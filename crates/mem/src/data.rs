//! Byte-addressable functional memory, used to check that every
//! disambiguation backend preserves sequential semantics.

use std::collections::HashMap;

/// Page granularity: 4 KiB, the sweet spot between page-table sparsity
/// and per-access locality for the suite's working sets.
const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
/// Words in a page's written-byte bitmask.
const MASK_WORDS: usize = PAGE_SIZE / 64;

/// One 4 KiB page: dense storage plus a written-byte bitmask.
///
/// Unwritten bytes are zero in `bytes` by construction (pages are
/// zero-initialized and only mutated through writes), so two pages with
/// equal masks compare by a straight `bytes` comparison.
#[derive(Clone, Debug)]
struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
    written: Box<[u64; MASK_WORDS]>,
    /// Bytes written in this page (population count of `written`).
    count: usize,
}

impl Page {
    fn new() -> Self {
        Self {
            bytes: Box::new([0; PAGE_SIZE]),
            written: Box::new([0; MASK_WORDS]),
            count: 0,
        }
    }
}

/// Sparse byte-addressable memory. Unwritten bytes read as zero.
///
/// This is the *functional* half of the simulator: the timing models decide
/// *when* accesses happen, while `DataMemory` records *what* they produce,
/// so tests can compare the final state (and every load's value) against an
/// in-order reference execution.
///
/// Storage is paged: a `HashMap` of 4 KiB pages, so the per-access cost is
/// one page lookup plus a dense slice read/write instead of the per-*byte*
/// hash probes of the old `HashMap<u64, u8>` layout — memory ops are the
/// engine's innermost loop. A per-page written-byte bitmask preserves the
/// old semantics exactly: `footprint` counts distinct written bytes, and
/// equality distinguishes a written zero from an unwritten byte.
#[derive(Clone, Debug, Default)]
pub struct DataMemory {
    pages: HashMap<u64, Page>,
    footprint: usize,
}

impl DataMemory {
    /// An empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads `size` bytes (1–8) at `addr`, little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    #[must_use]
    pub fn read(&self, addr: u64, size: u8) -> u64 {
        assert!((1..=8).contains(&size), "size must be 1..=8");
        let off = (addr % PAGE_SIZE as u64) as usize;
        if off + size as usize <= PAGE_SIZE {
            // Fast path: the access stays inside one page.
            let Some(page) = self.pages.get(&(addr >> PAGE_SHIFT)) else {
                return 0;
            };
            let mut v = 0u64;
            for i in (0..size as usize).rev() {
                v = (v << 8) | u64::from(page.bytes[off + i]);
            }
            return v;
        }
        // Page-straddling (or address-wrapping) access: per byte.
        let mut v = 0u64;
        for i in (0..size).rev() {
            let a = addr.wrapping_add(u64::from(i));
            let b = self
                .pages
                .get(&(a >> PAGE_SHIFT))
                .map_or(0, |p| p.bytes[(a % PAGE_SIZE as u64) as usize]);
            v = (v << 8) | u64::from(b);
        }
        v
    }

    /// Writes the low `size` bytes (1–8) of `value` at `addr`,
    /// little-endian.
    ///
    /// # Panics
    ///
    /// Panics if `size` is 0 or greater than 8.
    pub fn write(&mut self, addr: u64, size: u8, value: u64) {
        assert!((1..=8).contains(&size), "size must be 1..=8");
        let off = (addr % PAGE_SIZE as u64) as usize;
        if off + size as usize <= PAGE_SIZE {
            let page = self
                .pages
                .entry(addr >> PAGE_SHIFT)
                .or_insert_with(Page::new);
            for i in 0..size as usize {
                page.bytes[off + i] = (value >> (8 * i)) as u8;
                let (w, bit) = ((off + i) / 64, (off + i) % 64);
                if page.written[w] & (1 << bit) == 0 {
                    page.written[w] |= 1 << bit;
                    page.count += 1;
                    self.footprint += 1;
                }
            }
            return;
        }
        for i in 0..size {
            let a = addr.wrapping_add(u64::from(i));
            let page = self.pages.entry(a >> PAGE_SHIFT).or_insert_with(Page::new);
            let o = (a % PAGE_SIZE as u64) as usize;
            page.bytes[o] = (value >> (8 * i)) as u8;
            let (w, bit) = (o / 64, o % 64);
            if page.written[w] & (1 << bit) == 0 {
                page.written[w] |= 1 << bit;
                page.count += 1;
                self.footprint += 1;
            }
        }
    }

    /// Number of bytes ever written.
    #[must_use]
    pub fn footprint(&self) -> usize {
        self.footprint
    }

    /// Iterates over `(address, byte)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u8)> + '_ {
        self.pages.iter().flat_map(|(&pno, page)| {
            (0..PAGE_SIZE)
                .filter(|&o| page.written[o / 64] & (1 << (o % 64)) != 0)
                .map(move |o| ((pno << PAGE_SHIFT) + o as u64, page.bytes[o]))
        })
    }
}

impl PartialEq for DataMemory {
    /// Content equality over *written* bytes: same written-byte set, same
    /// values. A byte written as zero differs from an unwritten byte,
    /// exactly as it did when storage was a per-byte map.
    fn eq(&self, other: &Self) -> bool {
        if self.footprint != other.footprint {
            return false;
        }
        // Footprints match, so every written byte of `other` must be
        // accounted for by a matching page here (unmatched pages would
        // leave the totals unequal).
        self.pages
            .iter()
            .all(|(pno, p)| match other.pages.get(pno) {
                Some(q) => p.written == q.written && p.bytes == q.bytes,
                None => p.count == 0,
            })
    }
}

impl Eq for DataMemory {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip() {
        let mut m = DataMemory::new();
        m.write(0x100, 8, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read(0x100, 8), 0x0123_4567_89ab_cdef);
        assert_eq!(m.read(0x100, 4), 0x89ab_cdef);
        assert_eq!(m.read(0x104, 4), 0x0123_4567);
        assert_eq!(m.read(0x100, 1), 0xef);
    }

    #[test]
    fn unwritten_reads_zero() {
        let m = DataMemory::new();
        assert_eq!(m.read(0xdead, 8), 0);
    }

    #[test]
    fn partial_overwrite() {
        let mut m = DataMemory::new();
        m.write(0, 8, u64::MAX);
        m.write(2, 2, 0);
        assert_eq!(m.read(0, 8), 0xffff_ffff_0000_ffff);
    }

    #[test]
    fn footprint_counts_bytes() {
        let mut m = DataMemory::new();
        m.write(0, 8, 1);
        m.write(4, 8, 1); // overlaps 4 bytes
        assert_eq!(m.footprint(), 12);
    }

    #[test]
    fn equality_is_content_based() {
        let mut a = DataMemory::new();
        let mut b = DataMemory::new();
        a.write(0, 4, 0xaabbccdd);
        b.write(0, 2, 0xccdd);
        b.write(2, 2, 0xaabb);
        assert_eq!(a, b);
    }

    #[test]
    fn page_straddling_write_reads_back() {
        let mut m = DataMemory::new();
        let addr = (1 << PAGE_SHIFT) - 3; // 3 bytes in page 0, 5 in page 1
        m.write(addr, 8, 0x0807_0605_0403_0201);
        assert_eq!(m.read(addr, 8), 0x0807_0605_0403_0201);
        assert_eq!(m.footprint(), 8);
        assert_eq!(m.read(1 << PAGE_SHIFT, 1), 0x04);
    }

    #[test]
    fn written_zero_differs_from_unwritten() {
        let mut a = DataMemory::new();
        let b = DataMemory::new();
        a.write(64, 1, 0);
        assert_eq!(a.read(64, 1), b.read(64, 1));
        assert_ne!(a, b);
        assert_eq!(a.footprint(), 1);
    }

    #[test]
    fn iter_yields_written_bytes() {
        let mut m = DataMemory::new();
        m.write(5, 2, 0xbbaa);
        let mut pairs: Vec<_> = m.iter().collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(5, 0xaa), (6, 0xbb)]);
    }

    #[test]
    #[should_panic(expected = "1..=8")]
    fn oversized_read_panics() {
        let m = DataMemory::new();
        let _ = m.read(0, 9);
    }
}
