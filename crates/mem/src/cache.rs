//! A set-associative cache with true-LRU replacement.

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u32,
    /// Access latency in cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// The paper's accelerator L1: 64 KiB, 4-way, 64 B lines, 3 cycles.
    #[must_use]
    pub fn paper_l1() -> Self {
        Self {
            size_bytes: 64 * 1024,
            ways: 4,
            line_bytes: 64,
            latency: 3,
        }
    }

    /// The paper's shared LLC: 4 MiB, 16-way, 64 B lines, 25 cycles.
    #[must_use]
    pub fn paper_llc() -> Self {
        Self {
            size_bytes: 4 * 1024 * 1024,
            ways: 16,
            line_bytes: 64,
            latency: 25,
        }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero ways / line size, or
    /// capacity not divisible by `ways * line_bytes`).
    #[must_use]
    pub fn num_sets(&self) -> u64 {
        assert!(self.ways > 0 && self.line_bytes > 0, "degenerate geometry");
        let per_set = u64::from(self.ways) * u64::from(self.line_bytes);
        assert!(
            self.size_bytes.is_multiple_of(per_set) && self.size_bytes > 0,
            "capacity must be a whole number of sets"
        );
        self.size_bytes / per_set
    }
}

/// Hit/miss counters for one cache level.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
}

impl CacheStats {
    /// Total accesses.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (0 when no accesses).
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic counter value at last touch; smallest = LRU victim.
    last_touch: u64,
}

/// A set-associative, write-back, write-allocate cache model.
///
/// The model tracks tags only — data payloads live in the functional
/// [`crate::DataMemory`]. Timing composition across levels is handled by
/// [`crate::MemoryHierarchy`].
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`CacheConfig::num_sets`]).
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = vec![vec![Line::default(); config.ways as usize]; config.num_sets() as usize];
        Self {
            config,
            sets,
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache's configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / u64::from(self.config.line_bytes);
        let num_sets = self.sets.len() as u64;
        ((line % num_sets) as usize, line / num_sets)
    }

    /// Accesses `addr`; returns `true` on hit. On a miss the line is
    /// allocated (write-allocate) and the LRU way evicted, counting a
    /// writeback if the victim was dirty.
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.tick += 1;
        let (set_idx, tag) = self.set_and_tag(addr);
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_touch = self.tick;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_touch } else { 0 })
            .expect("ways >= 1");
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: is_write,
            last_touch: self.tick,
        };
        false
    }

    /// `true` if `addr`'s line is currently resident (no state change).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.set_and_tag(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Invalidates all lines and clears statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            for line in set {
                *line = Line::default();
            }
        }
        self.stats = CacheStats::default();
        self.tick = 0;
    }

    /// The line-aligned base address of `addr`.
    #[must_use]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / u64::from(self.config.line_bytes) * u64::from(self.config.line_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets, 2 ways, 16B lines.
        Cache::new(CacheConfig {
            size_bytes: 64,
            ways: 2,
            line_bytes: 16,
            latency: 1,
        })
    }

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheConfig::paper_l1().num_sets(), 256);
        assert_eq!(CacheConfig::paper_llc().num_sets(), 4096);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0x100, false));
        assert!(c.access(0x100, false));
        assert!(c.access(0x10f, false), "same line");
        assert!(!c.access(0x110, false), "next line");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with (line_index % 2 == 0): 0x00, 0x20, 0x40.
        c.access(0x00, false);
        c.access(0x20, false);
        c.access(0x00, false); // touch 0x00 -> 0x20 is LRU
        c.access(0x40, false); // evicts 0x20
        assert!(c.probe(0x00));
        assert!(!c.probe(0x20));
        assert!(c.probe(0x40));
    }

    #[test]
    fn writeback_counted_for_dirty_victims() {
        let mut c = tiny();
        c.access(0x00, true); // dirty
        c.access(0x20, false);
        c.access(0x40, false); // evicts dirty 0x00
        assert_eq!(c.stats().writebacks, 1);
        c.access(0x60, false); // evicts clean 0x20
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn probe_does_not_mutate() {
        let mut c = tiny();
        c.access(0x00, false);
        let before = c.stats();
        assert!(c.probe(0x00));
        assert!(!c.probe(0x999));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.access(0x00, true);
        c.reset();
        assert!(!c.probe(0x00));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn miss_ratio() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        c.access(16, false);
        assert!((c.stats().miss_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }

    #[test]
    fn line_of_alignment() {
        let c = tiny();
        assert_eq!(c.line_of(0x17), 0x10);
        assert_eq!(c.line_of(0x10), 0x10);
    }

    #[test]
    #[should_panic(expected = "whole number of sets")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 100,
            ways: 3,
            line_bytes: 16,
            latency: 1,
        });
    }
}
