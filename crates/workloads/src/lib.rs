//! # nachos-workloads — the 27 Table II acceleration regions
//!
//! Synthetic reproductions of the paper's accelerated program paths
//! (extracted by NEEDLE from SPEC2K, SPEC2K6 and PARSEC/PERFECT and
//! characterized in Table II). Each [`BenchSpec`] records the published
//! static characteristics; [`generate`] turns it into an executable
//! [`nachos_ir::Region`] + [`nachos_ir::Binding`] whose provenance
//! structure reproduces which NACHOS-SW stage resolves the region — see
//! DESIGN.md for the substitution argument.
//!
//! ```
//! use nachos_workloads::{by_name, generate};
//!
//! let spec = by_name("183.equake").expect("Table II row");
//! let w = generate(&spec);
//! assert_eq!(nachos_ir::validate_region(&w.region), Ok(()));
//! assert!(w.region.num_global_mem_ops() > 150);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gen;
mod spec;

pub use gen::{generate, generate_all, generate_path, Workload};
pub use spec::{all, by_name, AliasMix, BenchSpec, MissClass, Suite};
