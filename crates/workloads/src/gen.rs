//! Synthetic acceleration-region generator.
//!
//! Builds, for each Table II specification, a [`Region`] + [`Binding`]
//! whose *static* characteristics (op counts, memory-level parallelism,
//! dependence pairs, scratchpad promotion) and *provenance structure*
//! (which NACHOS-SW stage can resolve its MAY aliases) match the paper's
//! description of that benchmark's hottest path. The alias stages then run
//! their real algorithms against these pointer expressions — nothing is
//! labeled by fiat.
//!
//! Region layout, in program order:
//!
//! 1. *Ambiguous stores* (unknown provenance, early — the pathological
//!    serializers),
//! 2. first halves of the C4 dependence pairs,
//! 3. the independent lanes (static / inter-procedural / multidim /
//!    pointer-chase), operations within a lane chained by data,
//! 4. second halves of the dependence pairs,
//! 5. *ambiguous loads* (unknown provenance, late — the fan-in sites),
//! 6. scratchpad traffic and a compute reduction tree sized to reach the
//!    benchmark's C1 operation count.

use crate::spec::{BenchSpec, MissClass};
use nachos_ir::{
    AffineExpr, Binding, FpOp, IntOp, LoopId, LoopInfo, MemRef, MemSpace, NodeId, ParamInfo,
    Provenance, Region, RegionBuilder, ScaledParam, Subscript, UnknownPattern,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A generated workload: the region plus its runtime binding.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The Table II row this was generated from.
    pub spec: BenchSpec,
    /// The acceleration region.
    pub region: Region,
    /// Concrete addresses/parameters/pointer behaviours.
    pub binding: Binding,
}

/// Generates the hottest path (path 0) of a benchmark.
#[must_use]
pub fn generate(spec: &BenchSpec) -> Workload {
    generate_path(spec, 0)
}

/// Generates one of a benchmark's top-5 accelerated paths. Path 0 is the
/// hottest and matches Table II exactly; higher indices shrink the region
/// (fewer ops, same structure), mirroring the paper's per-path studies in
/// Figures 6, 7 and 9.
///
/// # Panics
///
/// Panics if `path >= 5`.
#[must_use]
pub fn generate_path(spec: &BenchSpec, path: u32) -> Workload {
    assert!(path < 5, "the paper studies the top five paths");
    Generator::new(spec, path).build()
}

/// Generates the hottest path of every Table II benchmark.
#[must_use]
pub fn generate_all() -> Vec<Workload> {
    crate::spec::all().iter().map(generate).collect()
}

fn seed_of(name: &str, path: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
    }
    h ^ u64::from(path).wrapping_mul(0x9e37_79b9)
}

/// Scales a count for path `path` (path 0 keeps it exact), keeping
/// nonzero counts nonzero.
fn scale(count: u32, path: u32) -> u32 {
    if count == 0 {
        return 0;
    }
    let scaled = count * (10 - 2 * path) / 10;
    scaled.max(1)
}

struct Generator<'s> {
    spec: &'s BenchSpec,
    path: u32,
    rng: SmallRng,
    b: RegionBuilder,
    inv_loop: LoopId,
    /// Bytes each lane/dep object advances per invocation-loop iteration.
    trip: i64,
    /// Object address assignments, in `BaseId` order.
    next_addr: u64,
    base_addrs: Vec<u64>,
    unknowns: Vec<UnknownPattern>,
    /// `(object range start, length)` of store-bearing lanes — candidate
    /// victims for conflicting ambiguous windows.
    store_ranges: Vec<(u64, u64)>,
    /// Result values feeding the final reduction.
    fringe: Vec<NodeId>,
    /// Compute nodes threaded between consecutive lane operations, sized
    /// so the compute/memory balance matches Table II's C1:C2 ratio —
    /// compute-heavy regions hide the LSQ's load-to-use penalty inside
    /// their compute chains, memory-dominated ones expose it (paper §VI).
    chain_len: u32,
    /// Count of store ops emitted so far (for `store_pct` balancing).
    stores_emitted: u32,
    mem_emitted: u32,
    multidim_base: Option<nachos_ir::BaseId>,
    multidim_param: Option<nachos_ir::ParamId>,
}

impl<'s> Generator<'s> {
    fn new(spec: &'s BenchSpec, path: u32) -> Self {
        let mut b = RegionBuilder::new(&format!("{}.p{}", spec.name, path));
        // The invocation-walking loop: its trip count bounds the footprint
        // each object cycles through, which sets the cache behaviour.
        let trips = match spec.miss {
            MissClass::Resident => 4,
            MissClass::Strided => 16,
            MissClass::Streaming => 1 << 20,
        };
        let inv_loop = b.enclosing_loop(LoopInfo::range("inv", 0, trips));
        let mem = spec.mem_ops.max(1);
        let chain_len = (spec.ops.saturating_sub(2 * mem) / mem).clamp(1, 10);
        Self {
            spec,
            path,
            chain_len,
            rng: SmallRng::seed_from_u64(seed_of(spec.name, path)),
            b,
            inv_loop,
            trip: trips,
            next_addr: 0x10_0000,
            base_addrs: Vec::new(),
            unknowns: Vec::new(),
            store_ranges: Vec::new(),
            fringe: Vec::new(),
            stores_emitted: 0,
            mem_emitted: 0,
            multidim_base: None,
            multidim_param: None,
        }
    }

    /// Reserves an address range for a new object and records it.
    fn alloc_range(&mut self, len: u64) -> u64 {
        let addr = self.next_addr;
        // Advance by a stride co-prime with the L1 set image (16 KiB for
        // a 64K/4-way/64B cache) so objects spread across sets instead of
        // aliasing into the same few.
        self.next_addr += len.next_multiple_of(4096) + 4096 + 0x10c0;
        addr
    }

    /// Per-invocation byte offset term: walks one cache line per
    /// iteration of the invocation loop.
    fn inv_term(&self) -> AffineExpr {
        AffineExpr::var(self.inv_loop).scaled(64)
    }

    fn should_store(&mut self) -> bool {
        if self.spec.store_pct == 0 {
            return false;
        }
        // Deterministic thinning toward the configured store percentage.
        let target = self.spec.store_pct;
        let current = (self.stores_emitted * 100)
            .checked_div(self.mem_emitted)
            .unwrap_or(0);
        current < target
    }

    fn note_mem(&mut self, is_store: bool) {
        self.mem_emitted += 1;
        if is_store {
            self.stores_emitted += 1;
        }
    }

    /// A few compute nodes chaining `from` toward the next lane op.
    fn chain_compute(&mut self, from: NodeId, len: u32) -> NodeId {
        let mut cur = from;
        for _ in 0..len {
            cur = if self.rng.gen_range(0..100) < self.spec.fp_pct {
                self.b.fp_op(FpOp::Mul, &[cur])
            } else {
                self.b.int_op(IntOp::Add, &[cur])
            };
        }
        cur
    }

    fn build(mut self) -> Workload {
        let spec = *self.spec;
        let path = self.path;
        let mem_budget = scale(spec.mem_ops, path);
        let amb_st = scale(spec.mix.ambiguous_stores, path).min(mem_budget);
        let amb_ld = scale(spec.mix.ambiguous_loads, path).min(mem_budget - amb_st);

        // C4 dependence pairs, capped to 40% of the memory budget (at
        // least one pair when the benchmark has any, budget permitting).
        let budget_left = mem_budget - amb_st - amb_ld;
        let cap_pairs = (budget_left * 2 / 5 / 2).max(u32::from(budget_left >= 4));
        let want = [spec.st_st, spec.st_ld, spec.ld_st];
        let total_want: u32 = want.iter().sum();
        let dep_pairs: [u32; 3] = if total_want == 0 || cap_pairs == 0 {
            [0, 0, 0]
        } else {
            let mut out = [0u32; 3];
            for (o, &w) in out.iter_mut().zip(&want) {
                if w > 0 {
                    *o = (w * cap_pairs / total_want).clamp(1, w);
                }
            }
            out
        };
        let dep_ops: u32 = dep_pairs.iter().sum::<u32>() * 2;
        let lane_budget = budget_left.saturating_sub(dep_ops);

        let x0 = self.b.input();

        // Phase 1: early ambiguous stores.
        let mut amb_store_nodes = Vec::new();
        for k in 0..amb_st {
            let u = self.b.unknown_ptr();
            self.unknowns.push(UnknownPattern::Fixed(0)); // patched below
            let val = self.chain_compute(x0, 1);
            let st = self.b.store(MemRef::unknown(u, i64::from(k) * 8), &[val]);
            self.note_mem(true);
            amb_store_nodes.push(st);
        }

        // Phase 2: first halves of dependence pairs.
        // kinds: 0 = St-St, 1 = St-Ld, 2 = Ld-St.
        let mut dep_handles: Vec<(usize, MemRef, NodeId)> = Vec::new();
        for (kind, &pairs) in dep_pairs.iter().enumerate() {
            for p in 0..pairs {
                let base = self.b.global(
                    &format!("dep{kind}_{p}"),
                    (self.trip as u64) * 64 + 64,
                    9_000 + (kind as u32) * 100 + p,
                );
                let addr = self.alloc_range((self.trip as u64) * 64 + 64);
                self.base_addrs.push(addr);
                let mref = MemRef::affine(base, self.inv_term());
                let first_is_store = kind != 2;
                let node = if first_is_store {
                    let v = self.chain_compute(x0, 1);
                    let st = self.b.store(mref.clone(), &[v]);
                    self.store_ranges.push((addr, (self.trip as u64) * 64 + 64));
                    st
                } else {
                    self.b.load(mref.clone(), &[])
                };
                self.note_mem(first_is_store);
                dep_handles.push((kind, mref, node));
            }
        }

        // Phase 3: independent lanes.
        let lanes = spec.mix.lanes().max(1);
        let per_lane = lane_budget / lanes;
        let extra = lane_budget % lanes;
        let mut lane_kinds: Vec<LaneKind> = Vec::new();
        for _ in 0..spec.mix.static_lanes {
            lane_kinds.push(LaneKind::Static);
        }
        for _ in 0..spec.mix.interproc_lanes {
            lane_kinds.push(LaneKind::InterProc);
        }
        for _ in 0..spec.mix.multidim_lanes {
            lane_kinds.push(LaneKind::MultiDim);
        }
        for _ in 0..spec.mix.irregular_lanes {
            lane_kinds.push(LaneKind::Chase);
        }
        for (lane, kind) in lane_kinds.iter().enumerate() {
            let ops = per_lane + u32::from((lane as u32) < extra);
            if ops == 0 {
                continue;
            }
            self.build_lane(lane as u32, *kind, ops, x0);
        }

        // Phase 4: second halves of dependence pairs.
        for (kind, mref, _first) in &dep_handles {
            let node = match kind {
                // St-St: a second store to the same location.
                0 => {
                    let v = self.chain_compute(x0, 1);
                    let st = self.b.store(mref.clone(), &[v]);
                    self.note_mem(true);
                    st
                }
                // St-Ld: a load that should forward from the store.
                1 => {
                    let ld = self.b.load(mref.clone(), &[]);
                    self.note_mem(false);
                    self.fringe.push(ld);
                    ld
                }
                // Ld-St: a read-modify-write — the store's value chains
                // from the load, so the MUST relation is implied by the
                // data dependence and Stage 3 prunes it (Figure 8).
                _ => {
                    let v = self.chain_compute(*_first, 1);
                    let st = self.b.store(mref.clone(), &[v]);
                    self.note_mem(true);
                    st
                }
            };
            let _ = node;
        }

        // Phase 5: late ambiguous loads (the MAY fan-in sites). With
        // `late_ambiguous_addresses`, the load's index computation hangs
        // off a deep lane chain, so its address (and thus its serialized
        // `==?` checks) resolve late.
        for _ in 0..amb_ld {
            let u = self.b.unknown_ptr();
            self.unknowns.push(UnknownPattern::Fixed(0)); // patched below
            let operands: Vec<NodeId> = if spec.mix.late_ambiguous_addresses {
                self.fringe.last().copied().into_iter().collect()
            } else {
                Vec::new()
            };
            let ld = self.b.load(MemRef::unknown(u, 0), &operands);
            self.note_mem(false);
            // The forward slice that stalls when the load stalls.
            let slice = self.chain_compute(ld, 3);
            self.fringe.push(slice);
        }

        // Phase 6: scratchpad traffic (perfectly disambiguated locals).
        let n_local = scale(spec.local_ops(), path);
        if n_local > 0 {
            let buf = self.b.stack("locals", u64::from(n_local) * 8 + 8);
            let laddr = self.alloc_range(u64::from(n_local) * 8 + 8);
            self.base_addrs.push(laddr);
            let mut prev = x0;
            for k in 0..n_local {
                let mref = MemRef::affine(buf, AffineExpr::constant_expr(i64::from(k / 2) * 8))
                    .with_space(MemSpace::Scratchpad);
                if k % 2 == 0 {
                    let v = self.chain_compute(prev, 1);
                    self.b.store(mref, &[v]);
                } else {
                    prev = self.b.load(mref, &[]);
                    self.fringe.push(prev);
                }
            }
        }

        // Phase 7: fill compute to the C1 target with a reduction tree.
        if self.fringe.is_empty() {
            self.fringe.push(x0);
        }
        let ops_target = scale(spec.ops, path) as usize;
        while self.b.region().dfg.num_nodes() + self.fringe.len() < ops_target {
            // Blend two fringe values; removing one and pushing the blend
            // keeps the tree balanced and the fringe shrinking slowly.
            let i = self.rng.gen_range(0..self.fringe.len());
            let a = self.fringe[i];
            let blended = self.chain_compute(a, 1);
            self.fringe[i] = blended;
        }
        // Final reduce + output: a balanced binary tree (logarithmic
        // depth), so the reduction stays off the memory critical path.
        while self.fringe.len() > 1 {
            let level = std::mem::take(&mut self.fringe);
            for pair in level.chunks(2) {
                let combined = if pair.len() == 2 {
                    if self.rng.gen_range(0..100) < self.spec.fp_pct {
                        self.b.fp_op(FpOp::Add, &[pair[0], pair[1]])
                    } else {
                        self.b.int_op(IntOp::Add, &[pair[0], pair[1]])
                    }
                } else {
                    pair[0]
                };
                self.fringe.push(combined);
            }
        }
        let last = self.fringe[0];
        self.b.output(last);

        // Patch ambiguous windows now that victim ranges are known.
        let conflict_pct = u32::from(spec.mix.conflict_pct);
        let mut patched = Vec::with_capacity(self.unknowns.len());
        for (k, _) in self.unknowns.iter().enumerate() {
            let collide =
                !self.store_ranges.is_empty() && self.rng.gen_range(0..100) < conflict_pct;
            let pat = if collide {
                let victim = self.store_ranges[k % self.store_ranges.len()];
                UnknownPattern::Scatter {
                    seed: self.rng.gen(),
                    lo: victim.0,
                    hi: victim.0 + victim.1.max(8),
                    align: 8,
                }
            } else {
                // A small private window: the pointer jumps around but
                // stays cache-warm, so the *ordering* behaviour (not a
                // guaranteed DRAM miss) differentiates the backends.
                let lo = 0x4000_0000 + (k as u64) * 0x1_0000;
                UnknownPattern::Scatter {
                    seed: self.rng.gen(),
                    lo,
                    hi: lo + 0x400,
                    align: 8,
                }
            };
            patched.push(pat);
        }

        let region = self.b.finish();
        debug_assert_eq!(region.bases.len(), self.base_addrs.len());
        let params = region.params.iter().map(|p| p.min.max(64)).collect();
        let binding = Binding {
            base_addrs: self.base_addrs,
            params,
            unknowns: patched,
        };
        Workload {
            spec,
            region,
            binding,
        }
    }

    fn build_lane(&mut self, lane: u32, kind: LaneKind, ops: u32, x0: NodeId) {
        match kind {
            LaneKind::Static | LaneKind::InterProc | LaneKind::Chase => {
                let len = (self.trip as u64) * 64 + u64::from(ops) * 8 + 64;
                let base = match kind {
                    LaneKind::Static => self.b.global(&format!("g{lane}"), len, lane),
                    LaneKind::InterProc => self.b.arg(lane, Provenance::Object(10_000 + lane)),
                    _ => self.b.heap(lane, Some(len)),
                };
                let addr = self.alloc_range(len);
                self.base_addrs.push(addr);
                let mut carried = x0;
                let mut lane_has_store = false;
                // Offset of the last load, for accumulation stores
                // (`x[i] += …`): the resulting LD→ST MUST relation is
                // already ordered by the data chain, which is exactly the
                // redundancy Stage 3 prunes (paper Figure 8).
                let mut last_load_off: Option<AffineExpr> = None;
                for j in 0..ops {
                    let off = self.inv_term().plus(i64::from(j) * 8);
                    let is_store = self.should_store();
                    let node = if is_store {
                        let target = last_load_off.take().unwrap_or_else(|| off.clone());
                        let mref = MemRef::affine(base, target);
                        let v = self.chain_compute(carried, 1);
                        self.b.store(mref, &[v])
                    } else {
                        let mref = MemRef::affine(base, off.clone());
                        // Pointer-chase lanes serialize: the next access's
                        // index computation consumes the previous result.
                        // Affine-indexed lanes issue independently; their
                        // in-flight parallelism is bounded by the machine
                        // (LSQ allocation / cache ports), which is what
                        // Table II's measured MLP reflects.
                        let operands: &[NodeId] = if kind == LaneKind::Chase && j > 0 {
                            &[carried]
                        } else {
                            &[]
                        };
                        last_load_off = Some(off);
                        self.b.load(mref, operands)
                    };
                    self.note_mem(is_store);
                    lane_has_store |= is_store;
                    if !is_store {
                        let k = self.chain_len;
                        carried = self.chain_compute(node, k);
                        self.fringe.push(carried);
                    }
                }
                if lane_has_store {
                    self.store_ranges.push((addr, len));
                }
            }
            LaneKind::MultiDim => {
                let (base, n) = match (self.multidim_base, self.multidim_param) {
                    (Some(b), Some(n)) => (b, n),
                    _ => {
                        let n = self.b.param(ParamInfo::at_least("n", 64));
                        let b = self.b.global("grid", 1 << 24, 20_000);
                        let addr = self.alloc_range(1 << 24);
                        self.base_addrs.push(addr);
                        self.multidim_base = Some(b);
                        self.multidim_param = Some(n);
                        (b, n)
                    }
                };
                let mut carried = x0;
                let mut lane_has_store = false;
                let mut last_load_row: Option<i64> = None;
                for j in 0..ops {
                    // A[inv + j][lane] over a symbolic row stride 8·n:
                    // Stage 1 cannot linearize this; Stage 4 separates the
                    // column dimension per lane. Stores accumulate into
                    // the previously-loaded row (stencil update pattern).
                    let is_store = self.should_store();
                    let row = if is_store {
                        last_load_row.take().unwrap_or(i64::from(j))
                    } else {
                        i64::from(j)
                    };
                    let subs = vec![
                        Subscript {
                            index: AffineExpr::var(self.inv_loop).plus(row),
                            stride: ScaledParam::symbolic(8, n),
                            extent: None,
                        },
                        Subscript {
                            index: AffineExpr::constant_expr(i64::from(lane)),
                            stride: ScaledParam::constant(8),
                            extent: Some(ScaledParam::symbolic(1, n)),
                        },
                    ];
                    let mref = MemRef::multi_dim(base, subs);
                    if is_store {
                        let v = self.chain_compute(carried, 1);
                        self.b.store(mref, &[v]);
                    } else {
                        last_load_row = Some(i64::from(j));
                        let ld = self.b.load(mref, &[]);
                        let k = self.chain_len;
                        carried = self.chain_compute(ld, k);
                        self.fringe.push(carried);
                    }
                    self.note_mem(is_store);
                    lane_has_store |= is_store;
                }
                if lane_has_store {
                    if let Some(&addr) = self
                        .multidim_base
                        .and_then(|b| self.base_addrs.get(b.index()))
                    {
                        self.store_ranges.push((addr, 64 * 512));
                    }
                }
            }
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LaneKind {
    Static,
    InterProc,
    MultiDim,
    Chase,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec;

    #[test]
    fn all_regions_validate() {
        for w in generate_all() {
            assert_eq!(
                nachos_ir::validate_region(&w.region),
                Ok(()),
                "{}: structured validator rejected a generated region",
                w.spec.name
            );
            assert!(
                w.binding.base_addrs.len() >= w.region.bases.len(),
                "{}: binding missing bases",
                w.spec.name
            );
            assert!(
                w.binding.unknowns.len() >= w.region.num_unknowns,
                "{}: binding missing unknowns",
                w.spec.name
            );
        }
    }

    #[test]
    fn op_counts_track_table2() {
        for w in generate_all() {
            let total = w.region.dfg.num_nodes() as i64;
            let target = i64::from(w.spec.ops);
            assert!(
                (total - target).abs() <= target / 5 + 8,
                "{}: {total} nodes vs C1 target {target}",
                w.spec.name
            );
            let mem = w.region.num_global_mem_ops() as i64;
            let mem_target = i64::from(w.spec.mem_ops);
            assert!(
                (mem - mem_target).abs() <= mem_target / 5 + 2,
                "{}: {mem} mem ops vs C2 target {mem_target}",
                w.spec.name
            );
        }
    }

    #[test]
    fn deterministic_generation() {
        let s = spec::by_name("183.equake").unwrap();
        let a = generate(&s);
        let b = generate(&s);
        assert_eq!(a.region.dfg.num_nodes(), b.region.dfg.num_nodes());
        assert_eq!(a.binding, b.binding);
    }

    #[test]
    fn paths_shrink_monotonically_in_size_class() {
        let s = spec::by_name("401.bzip2").unwrap();
        let p0 = generate_path(&s, 0);
        let p4 = generate_path(&s, 4);
        assert!(p4.region.dfg.num_nodes() < p0.region.dfg.num_nodes());
    }

    #[test]
    #[should_panic(expected = "top five")]
    fn path_index_bounded() {
        let s = spec::by_name("gzip").unwrap();
        let _ = generate_path(&s, 5);
    }

    #[test]
    fn store_mix_roughly_matches() {
        let s = spec::by_name("401.bzip2").unwrap();
        let w = generate(&s);
        let stores = w
            .region
            .dfg
            .mem_ops()
            .iter()
            .filter(|&&n| w.region.dfg.node(n).kind.is_store())
            .count();
        let total = w.region.dfg.num_mem_ops();
        let pct = stores * 100 / total;
        assert!(
            (25..=60).contains(&pct),
            "store fraction {pct}% far from spec {}%",
            s.store_pct
        );
    }

    #[test]
    fn scratchpad_ops_present_when_promoted() {
        let s = spec::by_name("crafty").unwrap();
        let w = generate(&s);
        assert!(w.region.num_scratchpad_ops() > 0);
        let z = spec::by_name("histog.").unwrap();
        let wz = generate(&z);
        assert_eq!(wz.region.num_scratchpad_ops(), 0);
    }

    #[test]
    fn blackscholes_has_no_memory_traffic() {
        let s = spec::by_name("blacks.").unwrap();
        let w = generate(&s);
        assert_eq!(w.region.num_global_mem_ops(), 0);
    }
}
