//! Table II: the 27 acceleration-region specifications.
//!
//! Each entry records the paper's static characteristics (columns C1–C5)
//! plus the *provenance structure* that determines which NACHOS-SW stage
//! can resolve the region's MAY aliases — derived from the paper's
//! per-stage discussion (§V, §VIII-B) and its workload classifications
//! (Figure 18's bloom classes, Figure 14's fan-in profile).
//!
//! OCR notes (see DESIGN.md §6): `181.mcf` is read as 29/2/2/5%,
//! `lbm` as 147 ops (the printed "47" cannot be below its 57 memory
//! operations), `povray` %LOC as 9 and `streamcluster` %LOC as 0.

/// Benchmark suite of origin.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Suite {
    /// SPEC CPU2000.
    Spec2k,
    /// SPEC CPU2006.
    Spec2k6,
    /// PARSEC / PERFECT (sar, dwt53, fft-2d, histogram).
    Parsec,
}

/// Cache behaviour class of the region's address streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissClass {
    /// Footprint resident in L1 after warm-up.
    Resident,
    /// Streams through memory: a new line per lane per invocation.
    Streaming,
    /// Strided reuse: walks within lines, occasional new line.
    Strided,
}

/// Composition of the region's memory lanes by provenance structure.
/// Lane counts sum to the region's memory-level parallelism (Table II C3):
/// lanes are mutually independent; operations within a lane are chained by
/// data dependence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AliasMix {
    /// Lanes over distinct globals with strided affine accesses — Stage 1
    /// proves everything.
    pub static_lanes: u32,
    /// Lanes through pointer arguments whose caller provenance Stage 2
    /// recovers.
    pub interproc_lanes: u32,
    /// Lanes over multidimensional symbolic-stride arrays — only Stage 4
    /// (polyhedral) proves independence.
    pub multidim_lanes: u32,
    /// Pointer-chasing lanes over distinct heap allocation sites: the
    /// compiler still proves independence (distinct identified objects),
    /// but each access's address depends on the previous access's value,
    /// so the lane is serial and cache-unfriendly.
    pub irregular_lanes: u32,
    /// Stores through unknown-provenance pointers, placed *early* in
    /// program order: the paper's pathological case where one ambiguous
    /// operation serializes every younger memory operation under
    /// NACHOS-SW.
    pub ambiguous_stores: u32,
    /// Loads through unknown-provenance pointers, placed *late*: each
    /// MAY-depends on every older store (the bzip2 fan-in sites of
    /// Figure 14).
    pub ambiguous_loads: u32,
    /// Percent of ambiguous address windows that overlap a live object at
    /// run time (drives true dynamic conflicts).
    pub conflict_pct: u8,
    /// When set, the ambiguous loads' addresses come from a deep index
    /// computation (bzip2's BWT indices, sar-pfa's interpolation
    /// coordinates): the `==?` checks start late and their one-per-cycle
    /// arbitration lands on the critical path — the contention that makes
    /// NACHOS ~8% slower than OPT-LSQ on these two workloads (§VIII-A).
    pub late_ambiguous_addresses: bool,
}

impl AliasMix {
    /// Total independent lanes.
    #[must_use]
    pub fn lanes(&self) -> u32 {
        self.static_lanes + self.interproc_lanes + self.multidim_lanes + self.irregular_lanes
    }

    /// Total unknown-provenance operations (the MAY sources).
    #[must_use]
    pub fn ambiguous_ops(&self) -> u32 {
        self.ambiguous_stores + self.ambiguous_loads
    }
}

/// One Table II row plus generator knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BenchSpec {
    /// Benchmark name.
    pub name: &'static str,
    /// Suite of origin.
    pub suite: Suite,
    /// C1: static operations in the region's dataflow graph.
    pub ops: u32,
    /// C2: memory operations needing disambiguation (non-local).
    pub mem_ops: u32,
    /// C3: memory-level parallelism.
    pub mlp: u32,
    /// C4: dynamic store-store dependencies per invocation.
    pub st_st: u32,
    /// C4: dynamic store-load dependencies per invocation.
    pub st_ld: u32,
    /// C4: dynamic load-store dependencies per invocation.
    pub ld_st: u32,
    /// C5: percent of memory operations promoted to scratchpad.
    pub pct_local: u32,
    /// Percent of compute operations that are floating point.
    pub fp_pct: u32,
    /// Percent of (non-dependency) memory operations that are stores.
    pub store_pct: u32,
    /// Provenance composition.
    pub mix: AliasMix,
    /// Cache behaviour.
    pub miss: MissClass,
}

impl BenchSpec {
    /// Number of scratchpad operations implied by C5 (`pct_local` percent
    /// of *all* memory operations, which are not part of `mem_ops`).
    #[must_use]
    pub fn local_ops(&self) -> u32 {
        if self.pct_local >= 100 {
            return 0;
        }
        (self.mem_ops * self.pct_local + (100 - self.pct_local) / 2) / (100 - self.pct_local)
    }

    /// Memory operations as a percentage of all operations (Figure 10's
    /// `%MEM`).
    #[must_use]
    pub fn pct_mem(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            100.0 * f64::from(self.mem_ops) / f64::from(self.ops)
        }
    }
}

/// Shorthand constructors for common mixes.
fn static_only(lanes: u32) -> AliasMix {
    AliasMix {
        static_lanes: lanes,
        ..AliasMix::default()
    }
}

fn interproc(resolved: u32, irregular: u32) -> AliasMix {
    AliasMix {
        interproc_lanes: resolved,
        irregular_lanes: irregular,
        ..AliasMix::default()
    }
}

fn multidim(lanes: u32) -> AliasMix {
    AliasMix {
        multidim_lanes: lanes,
        ..AliasMix::default()
    }
}

/// The 27 acceleration regions of Table II.
#[must_use]
pub fn all() -> Vec<BenchSpec> {
    use MissClass::{Resident, Streaming, Strided};
    use Suite::{Parsec, Spec2k, Spec2k6};
    vec![
        // ---------------- SPEC2K ----------------
        BenchSpec {
            name: "gzip",
            suite: Spec2k,
            ops: 64,
            mem_ops: 4,
            mlp: 4,
            st_st: 0,
            st_ld: 0,
            ld_st: 0,
            pct_local: 21,
            fp_pct: 0,
            store_pct: 0,
            mix: static_only(4),
            miss: Resident,
        },
        BenchSpec {
            name: "art",
            suite: Spec2k,
            ops: 100,
            mem_ops: 36,
            mlp: 4,
            st_st: 6,
            st_ld: 6,
            ld_st: 10,
            pct_local: 0,
            fp_pct: 60,
            store_pct: 30,
            mix: AliasMix {
                static_lanes: 1,
                irregular_lanes: 3,
                ambiguous_stores: 1,
                ambiguous_loads: 2,
                conflict_pct: 25,
                ..AliasMix::default()
            },
            miss: Strided,
        },
        BenchSpec {
            name: "181.mcf",
            suite: Spec2k,
            ops: 29,
            mem_ops: 2,
            mlp: 2,
            st_st: 0,
            st_ld: 0,
            ld_st: 0,
            pct_local: 5,
            fp_pct: 0,
            store_pct: 0,
            mix: static_only(2),
            miss: Streaming,
        },
        BenchSpec {
            name: "183.equake",
            suite: Spec2k,
            ops: 559,
            mem_ops: 215,
            mlp: 16,
            st_st: 0,
            st_ld: 0,
            ld_st: 12,
            pct_local: 2,
            fp_pct: 60,
            store_pct: 25,
            mix: multidim(16),
            miss: Strided,
        },
        BenchSpec {
            name: "crafty",
            suite: Spec2k,
            ops: 72,
            mem_ops: 7,
            mlp: 8,
            st_st: 0,
            st_ld: 0,
            ld_st: 0,
            pct_local: 40,
            fp_pct: 0,
            store_pct: 0,
            mix: static_only(7),
            miss: Resident,
        },
        BenchSpec {
            name: "parser",
            suite: Spec2k,
            ops: 81,
            mem_ops: 12,
            mlp: 4,
            st_st: 0,
            st_ld: 0,
            ld_st: 2,
            pct_local: 34,
            fp_pct: 0,
            store_pct: 25,
            mix: interproc(4, 0),
            miss: Strided,
        },
        // ---------------- SPEC2K6 ----------------
        BenchSpec {
            name: "401.bzip2",
            suite: Spec2k6,
            ops: 501,
            mem_ops: 110,
            mlp: 128,
            st_st: 3,
            st_ld: 0,
            ld_st: 3,
            pct_local: 27,
            fp_pct: 0,
            store_pct: 45,
            mix: AliasMix {
                static_lanes: 8,
                irregular_lanes: 56,
                ambiguous_loads: 3,
                conflict_pct: 5,
                ..AliasMix::default()
            },
            miss: Strided,
        },
        BenchSpec {
            name: "gcc",
            suite: Spec2k6,
            ops: 47,
            mem_ops: 2,
            mlp: 2,
            st_st: 1,
            st_ld: 0,
            ld_st: 0,
            pct_local: 26,
            fp_pct: 0,
            store_pct: 50,
            mix: interproc(2, 0),
            miss: Resident,
        },
        BenchSpec {
            name: "429.mcf",
            suite: Spec2k6,
            ops: 30,
            mem_ops: 3,
            mlp: 4,
            st_st: 0,
            st_ld: 0,
            ld_st: 0,
            pct_local: 24,
            fp_pct: 0,
            store_pct: 0,
            mix: static_only(3),
            miss: Streaming,
        },
        BenchSpec {
            name: "namd",
            suite: Spec2k6,
            ops: 527,
            mem_ops: 100,
            mlp: 16,
            st_st: 6,
            st_ld: 6,
            ld_st: 30,
            pct_local: 41,
            fp_pct: 70,
            store_pct: 30,
            mix: multidim(16),
            miss: Strided,
        },
        BenchSpec {
            name: "soplex",
            suite: Spec2k6,
            ops: 140,
            mem_ops: 32,
            mlp: 4,
            st_st: 0,
            st_ld: 0,
            ld_st: 8,
            pct_local: 19,
            fp_pct: 40,
            store_pct: 30,
            mix: AliasMix {
                static_lanes: 1,
                irregular_lanes: 3,
                ambiguous_stores: 1,
                ambiguous_loads: 1,
                conflict_pct: 20,
                ..AliasMix::default()
            },
            miss: Strided,
        },
        BenchSpec {
            name: "453.povray",
            suite: Spec2k6,
            ops: 223,
            mem_ops: 74,
            mlp: 32,
            st_st: 4,
            st_ld: 21,
            ld_st: 24,
            pct_local: 9,
            fp_pct: 42,
            store_pct: 35,
            mix: AliasMix {
                static_lanes: 4,
                irregular_lanes: 26,
                ambiguous_stores: 2,
                ambiguous_loads: 8,
                conflict_pct: 15,
                ..AliasMix::default()
            },
            miss: Strided,
        },
        BenchSpec {
            name: "sjeng",
            suite: Spec2k6,
            ops: 99,
            mem_ops: 11,
            mlp: 8,
            st_st: 0,
            st_ld: 0,
            ld_st: 0,
            pct_local: 33,
            fp_pct: 0,
            store_pct: 9,
            mix: static_only(8),
            miss: Resident,
        },
        BenchSpec {
            name: "464.h264ref",
            suite: Spec2k6,
            ops: 224,
            mem_ops: 42,
            mlp: 8,
            st_st: 0,
            st_ld: 5,
            ld_st: 0,
            pct_local: 27,
            fp_pct: 10,
            store_pct: 20,
            mix: AliasMix {
                interproc_lanes: 7,
                irregular_lanes: 1,
                ambiguous_loads: 1,
                ..AliasMix::default()
            },
            miss: Resident,
        },
        BenchSpec {
            name: "lbm",
            suite: Spec2k6,
            ops: 147,
            mem_ops: 57,
            mlp: 32,
            st_st: 0,
            st_ld: 0,
            ld_st: 0,
            pct_local: 12,
            fp_pct: 65,
            store_pct: 40,
            mix: multidim(32),
            miss: Streaming,
        },
        BenchSpec {
            name: "sphinx3",
            suite: Spec2k6,
            ops: 133,
            mem_ops: 20,
            mlp: 32,
            st_st: 0,
            st_ld: 0,
            ld_st: 0,
            pct_local: 0,
            fp_pct: 50,
            store_pct: 10,
            mix: AliasMix {
                static_lanes: 18,
                irregular_lanes: 2,
                ambiguous_loads: 1,
                ..AliasMix::default()
            },
            miss: Resident,
        },
        // ---------------- PARSEC / PERFECT ----------------
        BenchSpec {
            name: "blacks.",
            suite: Parsec,
            ops: 297,
            mem_ops: 0,
            mlp: 0,
            st_st: 0,
            st_ld: 0,
            ld_st: 0,
            pct_local: 4,
            fp_pct: 80,
            store_pct: 0,
            mix: AliasMix::default(),
            miss: Resident,
        },
        BenchSpec {
            name: "bodytrack",
            suite: Parsec,
            ops: 285,
            mem_ops: 42,
            mlp: 4,
            st_st: 30,
            st_ld: 30,
            ld_st: 42,
            pct_local: 10,
            fp_pct: 30,
            store_pct: 40,
            mix: multidim(4),
            miss: Resident,
        },
        BenchSpec {
            name: "dwt53",
            suite: Parsec,
            ops: 106,
            mem_ops: 16,
            mlp: 16,
            st_st: 0,
            st_ld: 0,
            ld_st: 0,
            pct_local: 11,
            fp_pct: 0,
            store_pct: 50,
            mix: multidim(16),
            miss: Strided,
        },
        BenchSpec {
            name: "ferret",
            suite: Parsec,
            ops: 185,
            mem_ops: 0,
            mlp: 2,
            st_st: 0,
            st_ld: 0,
            ld_st: 0,
            pct_local: 29,
            fp_pct: 40,
            store_pct: 0,
            mix: AliasMix::default(),
            miss: Resident,
        },
        BenchSpec {
            name: "fft-2d",
            suite: Parsec,
            ops: 314,
            mem_ops: 80,
            mlp: 4,
            st_st: 0,
            st_ld: 24,
            ld_st: 24,
            pct_local: 18,
            fp_pct: 55,
            store_pct: 45,
            mix: AliasMix {
                static_lanes: 1,
                irregular_lanes: 3,
                ambiguous_stores: 2,
                ambiguous_loads: 2,
                conflict_pct: 30,
                ..AliasMix::default()
            },
            miss: Streaming,
        },
        BenchSpec {
            name: "fluida.",
            suite: Parsec,
            ops: 229,
            mem_ops: 28,
            mlp: 8,
            st_st: 0,
            st_ld: 0,
            ld_st: 0,
            pct_local: 14,
            fp_pct: 50,
            store_pct: 25,
            mix: interproc(8, 0),
            miss: Resident,
        },
        BenchSpec {
            name: "freqmi.",
            suite: Parsec,
            ops: 109,
            mem_ops: 32,
            mlp: 4,
            st_st: 0,
            st_ld: 8,
            ld_st: 0,
            pct_local: 17,
            fp_pct: 0,
            store_pct: 35,
            mix: AliasMix {
                interproc_lanes: 2,
                irregular_lanes: 2,
                ambiguous_loads: 2,
                conflict_pct: 10,
                ..AliasMix::default()
            },
            miss: Strided,
        },
        BenchSpec {
            name: "sar-back",
            suite: Parsec,
            ops: 151,
            mem_ops: 7,
            mlp: 8,
            st_st: 0,
            st_ld: 0,
            ld_st: 0,
            pct_local: 64,
            fp_pct: 55,
            store_pct: 30,
            mix: AliasMix {
                interproc_lanes: 4,
                irregular_lanes: 1,
                ambiguous_loads: 1,
                ..AliasMix::default()
            },
            miss: Strided,
        },
        BenchSpec {
            name: "sar-pfa.",
            suite: Parsec,
            ops: 500,
            mem_ops: 32,
            mlp: 16,
            st_st: 12,
            st_ld: 0,
            ld_st: 12,
            pct_local: 19,
            fp_pct: 60,
            store_pct: 40,
            mix: AliasMix {
                interproc_lanes: 6,
                irregular_lanes: 10,
                ambiguous_stores: 2,
                ambiguous_loads: 4,
                conflict_pct: 10,
                late_ambiguous_addresses: true,
                ..AliasMix::default()
            },
            miss: Strided,
        },
        BenchSpec {
            name: "stream.",
            suite: Parsec,
            ops: 210,
            mem_ops: 32,
            mlp: 16,
            st_st: 0,
            st_ld: 0,
            ld_st: 0,
            pct_local: 0,
            fp_pct: 50,
            store_pct: 15,
            mix: AliasMix {
                static_lanes: 14,
                irregular_lanes: 2,
                ambiguous_loads: 1,
                ..AliasMix::default()
            },
            miss: Streaming,
        },
        BenchSpec {
            name: "histog.",
            suite: Parsec,
            ops: 522,
            mem_ops: 48,
            mlp: 16,
            st_st: 0,
            st_ld: 0,
            ld_st: 6,
            pct_local: 0,
            fp_pct: 0,
            store_pct: 40,
            mix: AliasMix {
                interproc_lanes: 10,
                irregular_lanes: 6,
                ambiguous_loads: 3,
                conflict_pct: 5,
                ..AliasMix::default()
            },
            miss: Strided,
        },
    ]
}

/// Looks a benchmark up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<BenchSpec> {
    all().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_seven_benchmarks() {
        assert_eq!(all().len(), 27);
    }

    #[test]
    fn names_are_unique() {
        let specs = all();
        let mut names: Vec<_> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 27);
    }

    #[test]
    fn lanes_bounded_by_mem_ops() {
        for s in all() {
            assert!(
                s.mix.lanes() <= s.mem_ops.max(1),
                "{}: more lanes than memory ops",
                s.name
            );
            assert!(s.mem_ops <= s.ops, "{}", s.name);
        }
    }

    #[test]
    fn fifteen_regions_have_no_ambiguity() {
        // The paper reports 15 of 27 workloads with zero MAY MDEs
        // (no NACHOS energy overhead).
        let clean = all().iter().filter(|s| s.mix.ambiguous_ops() == 0).count();
        assert_eq!(clean, 15);
    }

    #[test]
    fn stage_classes_match_paper() {
        // Stage 4 beneficiaries.
        for name in ["183.equake", "lbm", "namd", "bodytrack", "dwt53"] {
            let s = by_name(name).unwrap();
            assert!(s.mix.multidim_lanes > 0, "{name} should be multidim");
        }
        // Stage-1-perfect workloads.
        for name in ["gzip", "181.mcf", "429.mcf", "crafty", "sjeng"] {
            let s = by_name(name).unwrap();
            assert_eq!(s.mix.lanes(), s.mix.static_lanes, "{name} static only");
        }
        // Fan-in hotspots of Figure 14: bzip2's three late ambiguous
        // loads each face ~50 older stores.
        assert_eq!(by_name("401.bzip2").unwrap().mix.ambiguous_loads, 3);
        assert!(by_name("sar-pfa.").unwrap().mix.ambiguous_ops() >= 4);
    }

    #[test]
    fn local_ops_arithmetic() {
        let s = by_name("gzip").unwrap();
        // 4 global ops at 21% local: local/(local+4) ~= 21% -> 1 op.
        assert_eq!(s.local_ops(), 1);
        let z = by_name("histog.").unwrap();
        assert_eq!(z.local_ops(), 0);
    }

    #[test]
    fn pct_mem_matches_table() {
        let e = by_name("183.equake").unwrap();
        assert!((e.pct_mem() - 38.46).abs() < 0.1);
    }
}
