//! The CGRA grid: coordinates, geometry and the operand mesh.

use std::fmt;

/// Grid geometry. The paper's accelerator is a 32×32 array of homogeneous
/// functional units.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GridConfig {
    /// Number of rows.
    pub rows: u32,
    /// Number of columns.
    pub cols: u32,
}

impl GridConfig {
    /// The paper's 32×32 grid.
    #[must_use]
    pub fn paper() -> Self {
        Self { rows: 32, cols: 32 }
    }

    /// Total functional units.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.rows as usize * self.cols as usize
    }
}

impl Default for GridConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// A functional-unit coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    /// Row (0 at the cache edge).
    pub row: u32,
    /// Column.
    pub col: u32,
}

impl Coord {
    /// Manhattan distance to another coordinate — the number of mesh links
    /// an operand traverses between the two FUs.
    #[must_use]
    pub fn hops_to(self, other: Coord) -> u32 {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }

    /// Mesh links from this FU to the cache interface at the row-0 edge
    /// (one extra link for the edge crossing itself).
    #[must_use]
    pub fn hops_to_mem_edge(self) -> u32 {
        self.row + 1
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_grid_capacity() {
        assert_eq!(GridConfig::paper().capacity(), 1024);
        assert_eq!(GridConfig::default(), GridConfig::paper());
    }

    #[test]
    fn manhattan_distance() {
        let a = Coord { row: 1, col: 2 };
        let b = Coord { row: 4, col: 0 };
        assert_eq!(a.hops_to(b), 5);
        assert_eq!(b.hops_to(a), 5);
        assert_eq!(a.hops_to(a), 0);
    }

    #[test]
    fn memory_edge_distance_grows_with_row() {
        assert_eq!(Coord { row: 0, col: 5 }.hops_to_mem_edge(), 1);
        assert_eq!(Coord { row: 7, col: 0 }.hops_to_mem_edge(), 8);
    }
}
