//! Placement of a dataflow graph onto the CGRA grid.
//!
//! The mapping pass (paper Figure 3, Step 2) assigns each DFG node to one
//! functional unit. We use a layered topological placement: nodes are
//! grouped by dataflow depth (ASAP level), each level occupies consecutive
//! rows starting at the memory edge, and within a level nodes are placed
//! at the column nearest the mean column of their predecessors — a
//! standard list-scheduling heuristic that keeps operand routes short.

use crate::grid::{Coord, GridConfig};
use nachos_ir::{Dfg, EdgeKind, NodeId};
use std::fmt;

/// Placement failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlaceError {
    /// More nodes than functional units.
    TooManyNodes {
        /// DFG nodes requested.
        nodes: usize,
        /// Grid capacity available.
        capacity: usize,
    },
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::TooManyNodes { nodes, capacity } => write!(
                f,
                "dataflow graph has {nodes} nodes but the grid has only {capacity} FUs"
            ),
        }
    }
}

impl std::error::Error for PlaceError {}

/// A computed node→FU assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    grid: GridConfig,
    coords: Vec<Coord>,
}

impl Placement {
    /// Places `dfg` onto `grid`.
    ///
    /// # Errors
    ///
    /// Returns [`PlaceError::TooManyNodes`] when the graph exceeds the
    /// grid's capacity.
    pub fn compute(dfg: &Dfg, grid: GridConfig) -> Result<Self, PlaceError> {
        let n = dfg.num_nodes();
        if n > grid.capacity() {
            return Err(PlaceError::TooManyNodes {
                nodes: n,
                capacity: grid.capacity(),
            });
        }
        // ASAP level per node over data edges.
        let mut level = vec![0u32; n];
        for node in dfg.topo_order() {
            for e in dfg.out_edges(node) {
                if e.kind == EdgeKind::Data {
                    level[e.dst.index()] = level[e.dst.index()].max(level[node.index()] + 1);
                }
            }
        }
        // Bucket nodes by level, then assign row-major with a preferred
        // column derived from predecessors.
        let max_level = level.iter().copied().max().unwrap_or(0);
        let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); max_level as usize + 1];
        for node in dfg.node_ids() {
            buckets[level[node.index()] as usize].push(node);
        }
        let mut coords = vec![Coord { row: 0, col: 0 }; n];
        let mut occupied = vec![false; grid.capacity()];
        let mut row_cursor = 0u32;
        for bucket in &buckets {
            let rows_needed = (bucket.len() as u32).div_ceil(grid.cols).max(1);
            // Serpentine row assignment: graphs deeper than the grid fold
            // back instead of piling onto the last row, keeping
            // consecutive levels on adjacent rows.
            let base_row = serpentine_row(row_cursor, grid.rows);
            for &node in bucket {
                // Preferred column: mean of placed predecessors.
                let (mut sum, mut cnt) = (0u64, 0u64);
                for e in dfg.in_edges(node) {
                    if e.kind == EdgeKind::Data {
                        sum += u64::from(coords[e.src.index()].col);
                        cnt += 1;
                    }
                }
                let pref = sum
                    .checked_div(cnt)
                    .map_or(grid.cols / 2, |mean| mean as u32);
                let coord = nearest_free(grid, &occupied, base_row, pref);
                occupied[(coord.row * grid.cols + coord.col) as usize] = true;
                coords[node.index()] = coord;
            }
            row_cursor += rows_needed;
        }
        Ok(Self { grid, coords })
    }

    /// The FU assigned to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn coord(&self, node: NodeId) -> Coord {
        self.coords[node.index()]
    }

    /// Mesh links between the FUs of two nodes.
    #[must_use]
    pub fn hops(&self, src: NodeId, dst: NodeId) -> u32 {
        self.coord(src).hops_to(self.coord(dst))
    }

    /// Mesh links from a node's FU to the cache edge.
    #[must_use]
    pub fn hops_to_mem(&self, node: NodeId) -> u32 {
        self.coord(node).hops_to_mem_edge()
    }

    /// The grid this placement targets.
    #[must_use]
    pub fn grid(&self) -> GridConfig {
        self.grid
    }

    /// Average operand-route length over the graph's data edges.
    #[must_use]
    pub fn mean_route_hops(&self, dfg: &Dfg) -> f64 {
        let (mut total, mut count) = (0u64, 0u64);
        for e in dfg.edges() {
            total += u64::from(self.hops(e.src, e.dst));
            count += 1;
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }
}

/// Maps a monotonically increasing row cursor onto the grid in a
/// serpentine (reflecting) pattern: 0, 1, …, rows-1, rows-1, rows-2, …
fn serpentine_row(cursor: u32, rows: u32) -> u32 {
    if rows == 1 {
        return 0;
    }
    let period = 2 * rows;
    let r = cursor % period;
    if r < rows {
        r
    } else {
        period - 1 - r
    }
}

/// Finds the free FU closest to `(base_row, pref_col)`: the free cell
/// minimizing `(hops, row, col)` lexicographically. Searched as
/// expanding Manhattan rings around the target — rows ascending, then
/// columns ascending within a ring — so the first free cell found is
/// exactly the lexicographic minimum a full row-major grid scan would
/// select, at `O(d²)` visited cells instead of `O(rows × cols)`.
fn nearest_free(grid: GridConfig, occupied: &[bool], base_row: u32, pref_col: u32) -> Coord {
    let target = Coord {
        row: base_row,
        col: pref_col.min(grid.cols - 1),
    };
    let free = |row: u32, col: u32| !occupied[(row * grid.cols + col) as usize];
    // Largest possible Manhattan distance from the target to any cell.
    let max_d =
        target.row.max(grid.rows - 1 - target.row) + target.col.max(grid.cols - 1 - target.col);
    for d in 0..=max_d {
        let row_lo = target.row.saturating_sub(d);
        let row_hi = (target.row + d).min(grid.rows - 1);
        for row in row_lo..=row_hi {
            let rem = d - row.abs_diff(target.row);
            // The (at most two) cells of this row on the ring, in
            // ascending column order.
            let left = target.col.checked_sub(rem);
            let right = (rem > 0)
                .then_some(target.col + rem)
                .filter(|&c| c < grid.cols);
            if let Some(col) = left {
                if free(row, col) {
                    return Coord { row, col };
                }
            }
            if let Some(col) = right {
                if free(row, col) {
                    return Coord { row, col };
                }
            }
        }
    }
    unreachable!("capacity checked before placement")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nachos_ir::{AffineExpr, IntOp, MemRef, RegionBuilder};

    fn chain_region(len: usize) -> nachos_ir::Region {
        let mut b = RegionBuilder::new("chain");
        let mut prev = b.input();
        for _ in 0..len {
            prev = b.int_op(IntOp::Add, &[prev]);
        }
        b.finish()
    }

    #[test]
    fn chain_is_placed_in_distinct_fus() {
        let r = chain_region(10);
        let p = Placement::compute(&r.dfg, GridConfig::paper()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for node in r.dfg.node_ids() {
            assert!(seen.insert(p.coord(node)), "FU assigned twice");
        }
    }

    #[test]
    fn dependent_nodes_are_near() {
        let r = chain_region(6);
        let p = Placement::compute(&r.dfg, GridConfig::paper()).unwrap();
        for e in r.dfg.edges() {
            assert!(p.hops(e.src, e.dst) <= 4, "route unexpectedly long");
        }
        assert!(p.mean_route_hops(&r.dfg) <= 2.5);
    }

    #[test]
    fn capacity_overflow_is_reported() {
        let r = chain_region(10);
        let tiny = GridConfig { rows: 2, cols: 2 };
        let err = Placement::compute(&r.dfg, tiny).unwrap_err();
        assert!(matches!(err, PlaceError::TooManyNodes { nodes: 11, .. }));
        assert!(err.to_string().contains("11 nodes"));
    }

    #[test]
    fn wide_level_wraps_rows() {
        let mut b = RegionBuilder::new("wide");
        let x = b.input();
        for _ in 0..70 {
            b.int_op(IntOp::Add, &[x]);
        }
        let r = b.finish();
        let grid = GridConfig { rows: 8, cols: 16 };
        let p = Placement::compute(&r.dfg, grid).unwrap();
        let mut seen = std::collections::HashSet::new();
        for node in r.dfg.node_ids() {
            let c = p.coord(node);
            assert!(c.row < grid.rows && c.col < grid.cols);
            assert!(seen.insert(c));
        }
    }

    /// The reference selection the ring search must reproduce exactly:
    /// the full row-major scan keeping the first strictly-closer cell.
    fn nearest_free_scan(
        grid: GridConfig,
        occupied: &[bool],
        base_row: u32,
        pref_col: u32,
    ) -> Coord {
        let target = Coord {
            row: base_row,
            col: pref_col.min(grid.cols - 1),
        };
        let mut best: Option<(u32, Coord)> = None;
        for row in 0..grid.rows {
            for col in 0..grid.cols {
                if occupied[(row * grid.cols + col) as usize] {
                    continue;
                }
                let c = Coord { row, col };
                let d = c.hops_to(target);
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, c));
                }
            }
        }
        best.expect("at least one free cell").1
    }

    #[test]
    fn ring_search_matches_full_scan() {
        // Deterministic pseudo-random occupancy patterns over several
        // grid shapes; every (pattern, target) must agree with the
        // reference scan bit-for-bit.
        for grid in [
            GridConfig { rows: 32, cols: 32 },
            GridConfig { rows: 8, cols: 16 },
            GridConfig { rows: 1, cols: 7 },
            GridConfig { rows: 5, cols: 1 },
        ] {
            let cap = grid.capacity();
            let mut state = 0x9e3779b97f4a7c15u64;
            let mut next = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for density in [0u64, 2, 5, 9] {
                let occupied: Vec<bool> = (0..cap)
                    .map(|_| density > 0 && next() % 10 < density)
                    .collect();
                if occupied.iter().all(|&o| o) {
                    continue;
                }
                for _ in 0..50 {
                    let base_row = (next() % u64::from(grid.rows)) as u32;
                    let pref_col = (next() % u64::from(grid.cols * 2)) as u32;
                    assert_eq!(
                        nearest_free(grid, &occupied, base_row, pref_col),
                        nearest_free_scan(grid, &occupied, base_row, pref_col),
                        "grid {grid:?} target ({base_row}, {pref_col})"
                    );
                }
            }
        }
    }

    #[test]
    fn memory_ops_participate_normally() {
        let mut b = RegionBuilder::new("mem");
        let g = b.global("g", 64, 0);
        let ld = b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
        let st = b.store(MemRef::affine(g, AffineExpr::zero()), &[ld]);
        let r = b.finish();
        let p = Placement::compute(&r.dfg, GridConfig::paper()).unwrap();
        assert!(p.hops_to_mem(ld) >= 1);
        assert!(p.hops_to_mem(st) >= 1);
    }
}
