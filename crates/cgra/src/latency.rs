//! Functional-unit and operand-network latency model.

use nachos_ir::{FpOp, IntOp, OpKind};

/// Cycle latencies of the CGRA's functional units and mesh links.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyModel {
    /// Integer ALU operation latency.
    pub int_alu: u64,
    /// Integer multiply latency.
    pub int_mul: u64,
    /// FP add latency.
    pub fp_add: u64,
    /// FP multiply / FMA latency.
    pub fp_mul: u64,
    /// FP divide latency.
    pub fp_div: u64,
    /// Cycles per mesh link traversed by an operand.
    pub per_hop: u64,
    /// Address-generation cycles inside a load/store FU (before the
    /// request leaves for the cache or LSQ).
    pub mem_agen: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            int_alu: 1,
            int_mul: 3,
            fp_add: 3,
            fp_mul: 4,
            fp_div: 12,
            per_hop: 1,
            mem_agen: 1,
        }
    }
}

impl LatencyModel {
    /// Execution latency of one operation (excluding operand routing and,
    /// for memory operations, the cache access itself).
    #[must_use]
    pub fn op_latency(&self, kind: &OpKind) -> u64 {
        match kind {
            OpKind::Input { .. } | OpKind::Const { .. } | OpKind::Output => 0,
            OpKind::Int(IntOp::Mul) => self.int_mul,
            OpKind::Int(_) => self.int_alu,
            OpKind::Fp(FpOp::Add) => self.fp_add,
            OpKind::Fp(FpOp::Mul | FpOp::MulAdd) => self.fp_mul,
            OpKind::Fp(FpOp::Div) => self.fp_div,
            OpKind::Load(_) | OpKind::Store(_) => self.mem_agen,
        }
    }

    /// Routing delay for an operand crossing `hops` mesh links.
    #[must_use]
    pub fn route_latency(&self, hops: u32) -> u64 {
        self.per_hop * u64::from(hops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nachos_ir::{AffineExpr, BaseId, MemRef};

    #[test]
    fn latencies_by_kind() {
        let m = LatencyModel::default();
        assert_eq!(m.op_latency(&OpKind::Int(IntOp::Add)), 1);
        assert_eq!(m.op_latency(&OpKind::Int(IntOp::Mul)), 3);
        assert_eq!(m.op_latency(&OpKind::Fp(FpOp::Div)), 12);
        assert_eq!(m.op_latency(&OpKind::Const { value: 0 }), 0);
        let mem = MemRef::affine(BaseId::new(0), AffineExpr::zero());
        assert_eq!(m.op_latency(&OpKind::Load(mem)), 1);
    }

    #[test]
    fn route_latency_scales_with_hops() {
        let m = LatencyModel::default();
        assert_eq!(m.route_latency(0), 0);
        assert_eq!(m.route_latency(5), 5);
        let slow = LatencyModel {
            per_hop: 2,
            ..LatencyModel::default()
        };
        assert_eq!(slow.route_latency(5), 10);
    }
}
