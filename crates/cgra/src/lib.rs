//! # nachos-cgra — the CGRA fabric model
//!
//! The spatial accelerator substrate of the NACHOS (HPCA 2018)
//! reproduction: a grid of homogeneous functional units (32×32 in the
//! paper) connected by a static mesh operand network, onto which the
//! offloaded dataflow graph is placed one operation per FU.
//!
//! The crate provides:
//!
//! * [`GridConfig`] / [`Coord`] — grid geometry and Manhattan routing,
//! * [`Placement`] — a layered topological placement pass keeping operand
//!   routes short (the mapping step of the paper's Figure 3),
//! * [`LatencyModel`] — per-FU operation latencies and per-hop link delay.
//!
//! ```
//! use nachos_cgra::{GridConfig, Placement};
//! use nachos_ir::{IntOp, RegionBuilder};
//!
//! let mut b = RegionBuilder::new("demo");
//! let x = b.input();
//! let y = b.int_op(IntOp::Add, &[x]);
//! let region = b.finish();
//! let place = Placement::compute(&region.dfg, GridConfig::paper())?;
//! assert!(place.hops(x, y) >= 1);
//! # Ok::<(), nachos_cgra::PlaceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grid;
mod latency;
mod place;

pub use grid::{Coord, GridConfig};
pub use latency::LatencyModel;
pub use place::{PlaceError, Placement};
