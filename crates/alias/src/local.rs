//! Local-dependency wiring for scratchpad data.
//!
//! Accesses the compiler promoted to the scratchpad (Table II column C5)
//! are *perfectly disambiguated*: the compiler knows their exact
//! dependencies, so they need neither LSQ entries nor runtime checks. But
//! their true dependencies still exist, and on a dataflow fabric they must
//! be expressed explicitly. This pass labels every scratchpad pair with
//! full analysis power (the compiler allocated these objects itself) and
//! wires the resulting ORDER/FORWARD edges into the DFG. Every backend —
//! including OPT-LSQ, whose queue never sees local accesses — honours
//! these edges, and they carry no MDE energy (they stand in for register
//! dataflow).

use crate::afftest::IvBox;
use crate::classify::classify_same_object;
use crate::matrix::{AliasLabel, AliasMatrix};
use crate::stage1;
use crate::stage3::{plan_mdes, MdePlan};
use nachos_ir::{MemSpace, Region};

/// Labels scratchpad pairs and inserts their dependence edges into the
/// region's DFG. Returns the plan that was applied.
pub fn wire_local_deps(region: &mut Region) -> MdePlan {
    let mut matrix = AliasMatrix::for_space(region, MemSpace::Scratchpad);
    let bx = IvBox::from_nest(&region.loops);
    let pairs: Vec<_> = matrix.pairs().map(|(p, _, _)| p).collect();
    for pair in pairs {
        let a = region
            .dfg
            .node(matrix.node(pair.older))
            .kind
            .mem_ref()
            .expect("matrix tracks memory ops")
            .clone();
        let b = region
            .dfg
            .node(matrix.node(pair.younger))
            .kind
            .mem_ref()
            .expect("matrix tracks memory ops")
            .clone();
        // Full power: constant, single- and multi-IV differences all
        // resolve; anything the model cannot express stays conservative.
        let mut label = stage1::classify_pair(region, &bx, &a, &b);
        if label == AliasLabel::May {
            if let (Some(ba), Some(bb)) = (a.ptr.base(), b.ptr.base()) {
                if ba == bb {
                    label = classify_same_object(&a, &b, &bx, true);
                }
            }
        }
        matrix.set(pair, label);
    }
    let plan = plan_mdes(region, &matrix, true);
    plan.apply(region);
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use nachos_ir::{AffineExpr, EdgeKind, MemRef, RegionBuilder};

    fn scratch_ref(base: nachos_ir::BaseId, off: i64) -> MemRef {
        MemRef::affine(base, AffineExpr::constant_expr(off)).with_space(MemSpace::Scratchpad)
    }

    #[test]
    fn exact_local_dependence_becomes_forward() {
        let mut b = RegionBuilder::new("t");
        let s = b.stack("buf", 64);
        let x = b.input();
        b.store(scratch_ref(s, 0), &[x]);
        b.load(scratch_ref(s, 0), &[]);
        let mut r = b.finish();
        let plan = wire_local_deps(&mut r);
        assert_eq!(plan.forward.len(), 1);
        assert_eq!(r.dfg.count_edges(EdgeKind::Forward), 1);
    }

    #[test]
    fn disjoint_locals_stay_parallel() {
        let mut b = RegionBuilder::new("t");
        let s = b.stack("buf", 64);
        let x = b.input();
        b.store(scratch_ref(s, 0), &[x]);
        b.load(scratch_ref(s, 8), &[]);
        let mut r = b.finish();
        let plan = wire_local_deps(&mut r);
        assert_eq!(plan.num_mdes(), 0);
    }

    #[test]
    fn global_ops_are_untouched() {
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        b.store(m.clone(), &[]);
        b.load(m, &[]);
        let mut r = b.finish();
        let plan = wire_local_deps(&mut r);
        assert_eq!(plan.num_mdes(), 0, "main-memory pairs are not local deps");
        assert_eq!(r.dfg.num_edges(), 0);
    }
}
