//! Independent soundness audit of a compiled region.
//!
//! The pipeline's correctness rests on one claim: every pair labelled NO
//! is truly disjoint and every surviving MUST/MAY pair is ordered by a
//! memory dependency edge. This module re-checks that claim from first
//! principles, *without* trusting the stage pipeline that produced it:
//!
//! * [`VerdictLint`] re-derives a ground-truth overlap verdict for every
//!   ordering-relevant pair using the exact reachability machinery of
//!   [`crate::exact`] and [`crate::afftest`]. An unsound NO is an Error,
//!   a MUST whose exact/partial flavour is wrong is an Error, and a MAY
//!   that is provably decidable is a precision-loss Warning attributed to
//!   the stage that could have decided it.
//! * [`RaceLint`] proves, with the transitive closure of [`crate::reach`],
//!   that every surviving MUST/MAY pair is ordered older→younger in the
//!   final DFG (a missing chain is a hardware race), that FORWARD edges
//!   connect size-matched accesses, and that the committed [`MdePlan`]
//!   agrees with the labels and with the edges actually present.
//! * [`CertLint`] re-verifies every rewrite certificate `nachos-opt`
//!   recorded — witness paths, address congruence and arithmetic facts —
//!   independently of the optimizer that produced them. An unverifiable
//!   certificate is a hard error.
//! * [`AccountingLint`] recounts the final [`AliasMatrix`] and cross-checks
//!   every total the [`AnalysisReport`](crate::AnalysisReport) claims.
//! * [`ResourceLint`] flags comparator fan-in over budget, token fan-out
//!   over budget, dead value-producing nodes and unreferenced symbols.
//!
//! [`differential_no_collisions`] complements the static passes: it replays
//! the reference executor's address walk under a concrete [`Binding`] and
//! reports any NO pair whose byte intervals ever collide dynamically.
//!
//! Diagnostics are deterministic: passes run in a fixed order and the
//! result is sorted by `(severity, code, site, message)` and deduplicated,
//! so two audits of the same region are byte-identical.

use crate::afftest::{
    congruence_hits, delta_range, iteration_space, overlap_oracle, IvBox, Overlap,
};
use crate::classify::linearize;
use crate::exact::{window_reachable, ExactBudget};
use crate::matrix::{AliasLabel, AliasMatrix, Pair, PairKind};
use crate::pipeline::{may_fanin, Analysis, StageConfig};
use crate::reach::Reachability;
use crate::stage3::MdePlan;
use crate::{stage1, stage2, stage4};
use nachos_ir::{
    AffineExpr, BaseKind, Binding, EdgeKind, MemRef, NodeId, OpKind, Provenance, PtrExpr, Region,
    ScaledParam, Subscript,
};
use std::fmt;

/// How bad a finding is.
///
/// The ordering (`Error < Warning < Info`) is the report ordering: errors
/// sort first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// A soundness violation: the compiled region can produce wrong
    /// results or race in hardware. Gates CI.
    Error,
    /// A precision or efficiency loss: the region is correct but weaker
    /// or more expensive than necessary.
    Warning,
    /// An observation worth surfacing (dead code, unused symbols).
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        })
    }
}

/// Stable diagnostic codes, one per distinct finding class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// A pair labelled NO whose accesses can overlap.
    UnsoundNo,
    /// A MUST label whose exact/partial flavour contradicts ground truth.
    MustMismatch,
    /// A surviving MUST/MAY pair with no ordering chain in the final DFG.
    MissingChain,
    /// A FORWARD edge between accesses of different sizes.
    ForwardSizeMismatch,
    /// The committed MDE plan disagrees with the labels or the DFG.
    PlanDrift,
    /// The analysis report's bookkeeping disagrees with a recount.
    CountDrift,
    /// A NO pair whose addresses collided during differential replay.
    DynamicCollision,
    /// An optimizer certificate that fails independent re-verification.
    BadCertificate,
    /// A MAY pair that is provably decidable (precision loss).
    PrecisionLoss,
    /// An MDE already implied by other ordering edges (missed pruning).
    RedundantMde,
    /// MAY fan-in at one operation exceeds the comparator budget.
    FaninOverBudget,
    /// Token fan-out at one node exceeds the configured budget.
    TokenFanout,
    /// A value-producing node whose result is never consumed.
    DeadNode,
    /// A symbol-table entry no memory reference uses.
    UnreferencedSymbol,
}

impl Code {
    /// The stable report identifier, e.g. `A-E01`.
    #[must_use]
    pub fn id(self) -> &'static str {
        match self {
            Code::UnsoundNo => "A-E01",
            Code::MustMismatch => "A-E02",
            Code::MissingChain => "A-E03",
            Code::ForwardSizeMismatch => "A-E04",
            Code::PlanDrift => "A-E05",
            Code::CountDrift => "A-E06",
            Code::DynamicCollision => "A-E07",
            Code::BadCertificate => "A-E08",
            Code::PrecisionLoss => "A-W01",
            Code::RedundantMde => "A-W02",
            Code::FaninOverBudget => "A-W03",
            Code::TokenFanout => "A-I01",
            Code::DeadNode => "A-I02",
            Code::UnreferencedSymbol => "A-I03",
        }
    }

    /// The severity this code always carries.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self {
            Code::UnsoundNo
            | Code::MustMismatch
            | Code::MissingChain
            | Code::ForwardSizeMismatch
            | Code::PlanDrift
            | Code::CountDrift
            | Code::DynamicCollision
            | Code::BadCertificate => Severity::Error,
            Code::PrecisionLoss | Code::RedundantMde | Code::FaninOverBudget => Severity::Warning,
            Code::TokenFanout | Code::DeadNode | Code::UnreferencedSymbol => Severity::Info,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// Where in the region a diagnostic points.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Site {
    /// The region as a whole (accounting, symbol tables).
    Region,
    /// A single DFG node.
    Node(NodeId),
    /// An (older, younger) pair of DFG nodes.
    Pair {
        /// The older operation.
        older: NodeId,
        /// The younger operation.
        younger: NodeId,
    },
}

impl Site {
    fn sort_key(self) -> (u8, usize, usize) {
        match self {
            Site::Region => (0, 0, 0),
            Site::Node(n) => (1, n.index(), 0),
            Site::Pair { older, younger } => (2, older.index(), younger.index()),
        }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Region => f.write_str("region"),
            Site::Node(n) => write!(f, "{n}"),
            Site::Pair { older, younger } => write!(f, "{older}->{younger}"),
        }
    }
}

/// One audit finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Finding severity (always `code.severity()`).
    pub severity: Severity,
    /// Stable finding class.
    pub code: Code,
    /// Name of the audited region.
    pub region: String,
    /// Where the finding points.
    pub site: Site,
    /// Human-readable explanation with the evidence.
    pub message: String,
}

impl Diagnostic {
    fn new(code: Code, region: &str, site: Site, message: String) -> Self {
        Self {
            severity: code.severity(),
            code,
            region: region.to_owned(),
            site,
            message,
        }
    }

    /// `true` for Error severity.
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] `{}` {}: {}",
            self.severity, self.code, self.region, self.site, self.message
        )
    }
}

/// Budget knobs for the audit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AuditConfig {
    /// Iteration-point budget for the exhaustive enumeration oracle used
    /// when the bitset reachability test exceeds its own budget. `0`
    /// disables enumeration entirely (the interval+GCD test remains).
    pub oracle_points: u128,
    /// Comparator fan-in above which [`Code::FaninOverBudget`] fires.
    pub may_fanin_budget: usize,
    /// Per-node MDE fan-out above which [`Code::TokenFanout`] fires.
    pub token_fanout_budget: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            oracle_points: 1 << 12,
            may_fanin_budget: 8,
            token_fanout_budget: 8,
        }
    }
}

impl AuditConfig {
    /// A cheap configuration for in-driver auditing: no enumeration
    /// oracle, default resource budgets.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            oracle_points: 0,
            ..Self::default()
        }
    }
}

/// Shared context handed to every pass.
pub struct AuditCx<'a> {
    /// The compiled region (MDEs present in its DFG).
    pub region: &'a Region,
    /// The analysis `compile` produced for the region.
    pub analysis: &'a Analysis,
    /// Which pipeline stages were enabled.
    pub stages: StageConfig,
    /// Budget knobs.
    pub config: &'a AuditConfig,
    /// The iteration box of the region's loop nest.
    pub bx: IvBox,
}

impl AuditCx<'_> {
    fn mem(&self, node: NodeId) -> &MemRef {
        self.region
            .dfg
            .node(node)
            .kind
            .mem_ref()
            .expect("matrix tracks memory ops")
    }

    fn diag(&self, code: Code, site: Site, message: String) -> Diagnostic {
        Diagnostic::new(code, &self.region.name, site, message)
    }

    fn pair_site(&self, pair: Pair) -> Site {
        Site::Pair {
            older: self.analysis.matrix.node(pair.older),
            younger: self.analysis.matrix.node(pair.younger),
        }
    }
}

/// One audit pass.
pub trait Lint {
    /// Stable pass name (for reports and debugging).
    fn name(&self) -> &'static str;
    /// Runs the pass and returns its findings (any order; the framework
    /// sorts).
    fn run(&self, cx: &AuditCx<'_>) -> Vec<Diagnostic>;
}

/// The default pass registry, in execution order.
#[must_use]
pub fn default_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(VerdictLint),
        Box::new(RaceLint),
        Box::new(CertLint),
        Box::new(AccountingLint),
        Box::new(ResourceLint),
    ]
}

/// Audits a compiled region with the default configuration.
#[must_use]
pub fn audit(region: &Region, analysis: &Analysis, stages: StageConfig) -> Vec<Diagnostic> {
    audit_with(region, analysis, stages, &AuditConfig::default())
}

/// Audits a compiled region with explicit budgets.
#[must_use]
pub fn audit_with(
    region: &Region,
    analysis: &Analysis,
    stages: StageConfig,
    config: &AuditConfig,
) -> Vec<Diagnostic> {
    let cx = AuditCx {
        region,
        analysis,
        stages,
        config,
        bx: IvBox::from_nest(&region.loops),
    };
    let mut diags = Vec::new();
    for lint in default_lints() {
        diags.extend(lint.run(&cx));
    }
    finish(diags)
}

/// Deterministic report order: severity, then code, then site, then text.
fn finish(mut diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    diags.sort_by(|a, b| {
        (a.severity, a.code, a.site.sort_key(), &a.message).cmp(&(
            b.severity,
            b.code,
            b.site.sort_key(),
            &b.message,
        ))
    });
    diags.dedup();
    diags
}

// ---------------------------------------------------------------------------
// Ground truth
// ---------------------------------------------------------------------------

/// The audited truth about one pair of accesses, over the same relaxed
/// iteration box the pipeline reasons about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Truth {
    /// The byte intervals are disjoint for every iteration point.
    Never,
    /// Same address and size at every iteration point.
    AlwaysExact,
    /// Overlapping at every iteration point, but not always exactly.
    AlwaysPartial,
    /// Overlaps at some iteration points and not at others.
    Sometimes,
    /// Overlaps at some iteration point; whether it always does is beyond
    /// budget. Enough to condemn a NO label, not enough to judge a MUST.
    CanOverlap,
    /// The model cannot decide (unknown provenance, symbolic shapes, or
    /// budget exhausted). No verdict is issued.
    Undecidable,
}

impl fmt::Display for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Truth::Never => "never overlaps",
            Truth::AlwaysExact => "always overlaps exactly",
            Truth::AlwaysPartial => "always overlaps partially",
            Truth::Sometimes => "sometimes overlaps",
            Truth::CanOverlap => "can overlap",
            Truth::Undecidable => "undecidable",
        })
    }
}

fn const_truth(delta: i128, size_a: u32, size_b: u32) -> Truth {
    if delta == 0 && size_a == size_b {
        Truth::AlwaysExact
    } else if delta > -i128::from(size_a) && delta < i128::from(size_b) {
        Truth::AlwaysPartial
    } else {
        Truth::Never
    }
}

/// Exact overlap truth of an affine byte-offset difference over the box.
///
/// Primary engine: the bitset sumset DP of [`crate::exact`], queried for
/// the overlap window and for the value ranges outside it. Fallbacks when
/// the DP exceeds its budget: exhaustive enumeration (within
/// `oracle_points`), then the sound-but-incomplete interval+GCD test.
fn scalar_truth(
    delta: &AffineExpr,
    bx: &IvBox,
    size_a: u32,
    size_b: u32,
    oracle_points: u128,
) -> Truth {
    let window_lo = -i128::from(size_a) + 1;
    let window_hi = i128::from(size_b) - 1;
    let (lo, hi) = delta_range(delta, bx);
    let eb = ExactBudget::default();
    match window_reachable(delta, bx, window_lo, window_hi, eb) {
        Some(false) => Truth::Never,
        Some(true) => {
            let below = if lo < window_lo {
                window_reachable(delta, bx, lo, window_lo - 1, eb)
            } else {
                Some(false)
            };
            let above = if hi > window_hi {
                window_reachable(delta, bx, window_hi + 1, hi, eb)
            } else {
                Some(false)
            };
            match (below, above) {
                (Some(false), Some(false)) => {
                    if lo == 0 && hi == 0 && size_a == size_b {
                        Truth::AlwaysExact
                    } else {
                        Truth::AlwaysPartial
                    }
                }
                (Some(true), _) | (_, Some(true)) => Truth::Sometimes,
                _ => Truth::CanOverlap,
            }
        }
        None => {
            let points: u128 = delta
                .terms()
                .map(|(l, _)| {
                    let (bl, bh) = bx.bound(l.index());
                    (bh - bl + 1) as u128
                })
                .product();
            if oracle_points > 0 && points <= oracle_points && points <= 20_000_000 {
                match overlap_oracle(delta, bx, size_a, size_b) {
                    Overlap::Disjoint => Truth::Never,
                    Overlap::Exact => Truth::AlwaysExact,
                    Overlap::Partial => Truth::AlwaysPartial,
                    // The oracle enumerates every point, so Unknown means
                    // the overlap genuinely varies across the box.
                    Overlap::Unknown => Truth::Sometimes,
                }
            } else {
                match crate::afftest::overlap_test(delta, bx, size_a, size_b) {
                    Overlap::Disjoint => Truth::Never,
                    Overlap::Exact => Truth::AlwaysExact,
                    Overlap::Partial => Truth::AlwaysPartial,
                    // overlap_test's Unknown is *undecided*, not "varies".
                    Overlap::Unknown => Truth::Undecidable,
                }
            }
        }
    }
}

/// How two base objects relate, after merging the stage-1 axioms with the
/// stage-2 provenance tracing (both are inputs to the semantic model, so
/// the audit may assume them — what it refuses to assume is the *stage
/// plumbing* that applies them).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Relation {
    Same,
    Distinct,
    Unknown,
}

fn base_identity(region: &Region, ba: nachos_ir::BaseId, bb: nachos_ir::BaseId) -> Relation {
    #[derive(PartialEq, Eq, Clone, Copy)]
    enum Id {
        Caller(u32),
        Local(nachos_ir::BaseId),
        Opaque,
    }
    let eff = |base: nachos_ir::BaseId| {
        let obj = region.base(base);
        match &obj.kind {
            BaseKind::Global { .. } => match obj.caller_object {
                Some(c) => Id::Caller(c),
                None => Id::Local(base),
            },
            BaseKind::Stack { .. } | BaseKind::Heap { .. } => Id::Local(base),
            BaseKind::Arg { index } => match region.context.provenance(*index) {
                Provenance::Object(c) => Id::Caller(c),
                Provenance::Unknown => Id::Opaque,
            },
        }
    };
    match (eff(ba), eff(bb)) {
        (Id::Opaque, _) | (_, Id::Opaque) => {
            let (ka, kb) = (&region.base(ba).kind, &region.base(bb).kind);
            if ka.is_identified_object() && kb.is_identified_object() {
                return Relation::Distinct;
            }
            if matches!(
                (ka, kb),
                (BaseKind::Arg { .. }, BaseKind::Stack { .. })
                    | (BaseKind::Stack { .. }, BaseKind::Arg { .. })
            ) {
                return Relation::Distinct;
            }
            Relation::Unknown
        }
        (Id::Caller(x), Id::Caller(y)) => {
            if x == y {
                Relation::Same
            } else {
                Relation::Distinct
            }
        }
        (Id::Caller(_), Id::Local(_)) | (Id::Local(_), Id::Caller(_)) => Relation::Distinct,
        (Id::Local(x), Id::Local(y)) => {
            if x == y {
                Relation::Same
            } else {
                Relation::Distinct
            }
        }
    }
}

/// Smallest provable magnitude of a possibly-symbolic stride factor
/// (mirrors the stage-4 precondition; reimplemented so the audit does not
/// depend on stage-4 internals).
fn min_magnitude(factor: ScaledParam, region: &Region) -> Option<i64> {
    match factor.param {
        None => Some(factor.scale.abs()),
        Some(p) => {
            let info = region.params.get(p.index())?;
            if info.min >= 1 {
                factor.scale.abs().checked_mul(info.min)
            } else {
                None
            }
        }
    }
}

fn shapes_compatible(region: &Region, a: &[Subscript], b: &[Subscript]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).enumerate().all(|(d, (sa, sb))| {
            sa.stride == sb.stride
                && sa.extent == sb.extent
                && (d == 0 || sa.extent.is_some())
                && min_magnitude(sa.stride, region).is_some()
        })
}

/// Independent per-dimension truth for two multidimensional views of the
/// same array whose strides are symbolic. Sound only under the in-bounds
/// index-vector/address bijection; `None` when the preconditions fail.
fn multidim_truth(cx: &AuditCx<'_>, a: &MemRef, b: &MemRef) -> Option<Truth> {
    let (
        PtrExpr::MultiDim {
            base: ba,
            subs: sa,
            in_bounds: ia,
        },
        PtrExpr::MultiDim {
            base: bb,
            subs: sb,
            in_bounds: ib,
        },
    ) = (&a.ptr, &b.ptr)
    else {
        return None;
    };
    if ba != bb || !ia || !ib || !shapes_compatible(cx.region, sa, sb) {
        return None;
    }
    let inner_min = min_magnitude(sa.last()?.stride, cx.region)?;
    if i64::from(a.size) > inner_min || i64::from(b.size) > inner_min {
        return None;
    }
    let mut all_exact = true;
    for (da, db) in sa.iter().zip(sb) {
        // Reparameterize to iteration counts: an exact description of the
        // subscript deltas the runtime produces (stepped loops included).
        let (delta, kbx) = iteration_space(&da.index.sub(&db.index), &cx.region.loops);
        match scalar_truth(&delta, &kbx, 1, 1, cx.config.oracle_points) {
            // One dimension's subscripts never coincide: under the
            // bijection the element vectors always differ, so the
            // (element-contained) accesses never touch.
            Truth::Never => return Some(Truth::Never),
            Truth::AlwaysExact => {}
            // "Sometimes equal" does not compose across dimensions (the
            // equal points need not coincide), so stay silent.
            _ => all_exact = false,
        }
    }
    if all_exact {
        Some(if a.size == b.size {
            Truth::AlwaysExact
        } else {
            Truth::AlwaysPartial
        })
    } else {
        None
    }
}

fn same_object_truth(cx: &AuditCx<'_>, a: &MemRef, b: &MemRef) -> Truth {
    if let (Some(la), Some(lb)) = (linearize(a), linearize(b)) {
        // Reparameterize to iteration counts — the *exact* value set the
        // runtime walks (the dense box over-approximates stepped loops),
        // so the audited truth is at least as sharp as stage 5.
        let (delta, kbx) = iteration_space(&la.sub(&lb), &cx.region.loops);
        return scalar_truth(
            &delta,
            &kbx,
            u32::from(a.size),
            u32::from(b.size),
            cx.config.oracle_points,
        );
    }
    multidim_truth(cx, a, b).unwrap_or(Truth::Undecidable)
}

fn ground_truth(cx: &AuditCx<'_>, a: &MemRef, b: &MemRef) -> Truth {
    // Contract axioms: `restrict` scopes and TBAA are semantic promises,
    // so they legitimize a NO label regardless of addresses.
    if let (Some(sa), Some(sb)) = (a.noalias_scope, b.noalias_scope) {
        if sa != sb {
            return Truth::Never;
        }
    }
    if !a.ty.compatible(b.ty) {
        return Truth::Never;
    }
    let region = cx.region;
    match (&a.ptr, &b.ptr) {
        (
            PtrExpr::Unknown {
                source: sa,
                offset: oa,
            },
            PtrExpr::Unknown {
                source: sb,
                offset: ob,
            },
        ) => {
            if sa == sb {
                const_truth(
                    i128::from(*oa) - i128::from(*ob),
                    u32::from(a.size),
                    u32::from(b.size),
                )
            } else {
                Truth::Undecidable
            }
        }
        (PtrExpr::Unknown { .. }, _) | (_, PtrExpr::Unknown { .. }) => {
            let known = a.ptr.base().or(b.ptr.base()).expect("one side has a base");
            match region.base(known).kind {
                // An unknown pointer cannot reach a non-escaping stack
                // slot (same axiom the pipeline relies on).
                BaseKind::Stack { .. } => Truth::Never,
                _ => Truth::Undecidable,
            }
        }
        _ => {
            let (ba, bb) = (
                a.ptr.base().expect("affine/multidim has base"),
                b.ptr.base().expect("affine/multidim has base"),
            );
            if ba == bb {
                return same_object_truth(cx, a, b);
            }
            match base_identity(region, ba, bb) {
                Relation::Same => same_object_truth(cx, a, b),
                Relation::Distinct => Truth::Never,
                Relation::Unknown => Truth::Undecidable,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 1: verdict soundness
// ---------------------------------------------------------------------------

/// Re-derives ground truth for every pair and compares it to the label.
pub struct VerdictLint;

/// Which stage could have decided a provably-decidable MAY pair.
fn attribute_precision_loss(cx: &AuditCx<'_>, a: &MemRef, b: &MemRef) -> String {
    if stage1::classify_pair(cx.region, &cx.bx, a, b) != AliasLabel::May {
        return "decidable by stage 1".to_owned();
    }
    if let Some(l) = stage2::refine_pair(cx.region, &cx.bx, a, b) {
        if l != AliasLabel::May {
            return if cx.stages.stage2 {
                "decidable by stage 2".to_owned()
            } else {
                "decidable by stage 2 (disabled)".to_owned()
            };
        }
    }
    if let Some(l) = stage4::refine_pair(cx.region, &cx.bx, a, b) {
        if l != AliasLabel::May {
            return if cx.stages.stage4 {
                "decidable by stage 4".to_owned()
            } else {
                "decidable by stage 4 (disabled)".to_owned()
            };
        }
    }
    if let (Some(ba), Some(bb), Some(la), Some(lb)) =
        (a.ptr.base(), b.ptr.base(), linearize(a), linearize(b))
    {
        if ba == bb {
            let (dk, kbx) = iteration_space(&la.sub(&lb), &cx.region.loops);
            if crate::optimize::disjoint_fact(&dk, &kbx, u32::from(a.size), u32::from(b.size))
                .is_some()
            {
                return "decidable by stage 5 (run nachos-opt)".to_owned();
            }
        }
    }
    "beyond all stages".to_owned()
}

impl Lint for VerdictLint {
    fn name(&self) -> &'static str {
        "verdict-soundness"
    }

    fn run(&self, cx: &AuditCx<'_>) -> Vec<Diagnostic> {
        let matrix = &cx.analysis.matrix;
        let mut diags = Vec::new();
        for (pair, _, label) in matrix.pairs() {
            let a = cx.mem(matrix.node(pair.older));
            let b = cx.mem(matrix.node(pair.younger));
            let truth = ground_truth(cx, a, b);
            let site = cx.pair_site(pair);
            match label {
                AliasLabel::No => {
                    if matches!(
                        truth,
                        Truth::AlwaysExact
                            | Truth::AlwaysPartial
                            | Truth::Sometimes
                            | Truth::CanOverlap
                    ) {
                        diags.push(cx.diag(
                            Code::UnsoundNo,
                            site,
                            format!("pair labelled NO but the accesses {truth}"),
                        ));
                    }
                }
                AliasLabel::MustExact => {
                    if matches!(
                        truth,
                        Truth::Never | Truth::AlwaysPartial | Truth::Sometimes
                    ) {
                        diags.push(cx.diag(
                            Code::MustMismatch,
                            site,
                            format!("pair labelled MUST(exact) but the accesses {truth}"),
                        ));
                    }
                }
                AliasLabel::MustPartial => {
                    if matches!(truth, Truth::Never | Truth::AlwaysExact | Truth::Sometimes) {
                        diags.push(cx.diag(
                            Code::MustMismatch,
                            site,
                            format!("pair labelled MUST(partial) but the accesses {truth}"),
                        ));
                    }
                }
                AliasLabel::May => {
                    let provable = match truth {
                        Truth::Never => Some("NO"),
                        Truth::AlwaysExact => Some("MUST(exact)"),
                        Truth::AlwaysPartial => Some("MUST(partial)"),
                        _ => None,
                    };
                    if let Some(better) = provable {
                        let attribution = attribute_precision_loss(cx, a, b);
                        diags.push(cx.diag(
                            Code::PrecisionLoss,
                            site,
                            format!("pair labelled MAY but is provably {better} ({attribution})"),
                        ));
                    }
                }
            }
        }
        diags
    }
}

// ---------------------------------------------------------------------------
// Pass 2: MDE race detection
// ---------------------------------------------------------------------------

/// Proves every surviving MUST/MAY pair is ordered in the final DFG, and
/// that the committed plan, the edges and the labels agree.
pub struct RaceLint;

/// `true` when the ordering edge `src → dst` is already implied by the
/// remaining graph: either a parallel ordering edge exists, or some other
/// first hop out of `src` reaches `dst` through the closure. Sound in a
/// DAG: any implying path must leave `src` by one of its out-edges.
fn first_hop_redundant(region: &Region, closure: &Reachability, src: NodeId, dst: NodeId) -> bool {
    let mut direct = 0usize;
    for e in region.dfg.out_edges(src) {
        if !matches!(e.kind, EdgeKind::Data | EdgeKind::Order | EdgeKind::Forward) {
            continue;
        }
        if e.dst == dst {
            direct += 1;
            continue;
        }
        if closure.reaches(e.dst, dst) {
            return true;
        }
    }
    direct > 1
}

impl Lint for RaceLint {
    fn name(&self) -> &'static str {
        "mde-race"
    }

    #[allow(clippy::too_many_lines)]
    fn run(&self, cx: &AuditCx<'_>) -> Vec<Diagnostic> {
        let region = cx.region;
        let matrix = &cx.analysis.matrix;
        let plan: &MdePlan = &cx.analysis.plan;
        let mut diags = Vec::new();
        // Guaranteed ordering: data flow, ORDER tokens and FORWARD values.
        // A MAY edge orders only its own endpoints (the runtime check may
        // release the younger op early, so MAY never participates in
        // transitive chains).
        let closure = Reachability::of_dfg(
            &region.dfg,
            &[EdgeKind::Data, EdgeKind::Order, EdgeKind::Forward],
        );
        let has_edge = |s: NodeId, d: NodeId, kind: EdgeKind| {
            region
                .dfg
                .out_edges(s)
                .any(|e| e.dst == d && e.kind == kind)
        };

        // A-E03: every surviving MUST/MAY pair needs an ordering chain.
        for (pair, _, label) in matrix.pairs() {
            let (s, d) = (matrix.node(pair.older), matrix.node(pair.younger));
            let ordered = match label {
                AliasLabel::No => true,
                // A coalesced MAY pair is ordered *through* its kept
                // sibling comparator; `CertLint` independently re-verifies
                // that claim (kept edge present, congruent address,
                // guaranteed witness path), so accepting it here does not
                // extend trust to the optimizer.
                AliasLabel::May => {
                    has_edge(s, d, EdgeKind::May)
                        || closure.reaches(s, d)
                        || cx
                            .analysis
                            .opt
                            .as_ref()
                            .is_some_and(|o| o.coalesced_pair(s, d))
                }
                AliasLabel::MustExact | AliasLabel::MustPartial => closure.reaches(s, d),
            };
            if !ordered {
                diags.push(cx.diag(
                    Code::MissingChain,
                    Site::Pair {
                        older: s,
                        younger: d,
                    },
                    format!(
                        "surviving {label} pair has no ordering chain from older to younger \
                         in the final DFG (hardware race)"
                    ),
                ));
            }
        }

        // A-E04: FORWARD edges must connect size-matched accesses (the
        // forwarded value substitutes for the load's memory read).
        for e in region.dfg.edges() {
            if e.kind != EdgeKind::Forward {
                continue;
            }
            let (src_mem, dst_mem) = (
                region.dfg.node(e.src).kind.mem_ref(),
                region.dfg.node(e.dst).kind.mem_ref(),
            );
            if let (Some(sm), Some(dm)) = (src_mem, dst_mem) {
                if sm.size != dm.size {
                    diags.push(cx.diag(
                        Code::ForwardSizeMismatch,
                        Site::Pair {
                            older: e.src,
                            younger: e.dst,
                        },
                        format!(
                            "FORWARD edge between accesses of different sizes ({} vs {} bytes)",
                            sm.size, dm.size
                        ),
                    ));
                }
            }
        }

        // A-E05: the committed plan must agree with the labels and with
        // the edges actually present in the DFG.
        let mut index_of = vec![None; region.dfg.num_nodes()];
        for (i, &n) in matrix.ops().iter().enumerate() {
            index_of[n.index()] = Some(i);
        }
        let planned_pair = |s: NodeId, d: NodeId| -> Option<(Pair, AliasLabel)> {
            let (i, j) = (index_of[s.index()]?, index_of[d.index()]?);
            if i >= j {
                return None;
            }
            let pair = Pair {
                older: i,
                younger: j,
            };
            matrix.get(pair).map(|l| (pair, l))
        };
        let mut drift = |s: NodeId, d: NodeId, kind: EdgeKind, want: &str, label_ok: bool| {
            let site = Site::Pair {
                older: s,
                younger: d,
            };
            if !label_ok {
                diags.push(cx.diag(
                    Code::PlanDrift,
                    site,
                    format!("planned {want} edge does not match the pair's final label"),
                ));
            }
            if !has_edge(s, d, kind) {
                diags.push(cx.diag(
                    Code::PlanDrift,
                    site,
                    format!("planned {want} edge is missing from the DFG"),
                ));
            }
        };
        for &(s, d) in &plan.forward {
            let ok = planned_pair(s, d).is_some_and(|(pair, l)| {
                l == AliasLabel::MustExact && matrix.kind(pair) == PairKind::StLd
            });
            drift(s, d, EdgeKind::Forward, "FORWARD", ok);
        }
        for &(s, d) in &plan.order {
            let ok = planned_pair(s, d).is_some_and(|(_, l)| l.is_must());
            drift(s, d, EdgeKind::Order, "ORDER", ok);
        }
        for &(s, d) in &plan.may {
            let ok = planned_pair(s, d).is_some_and(|(_, l)| l.is_may());
            drift(s, d, EdgeKind::May, "MAY", ok);
        }

        // A-W02: transitively-redundant MDEs stage 3 should have pruned.
        // ST→LD ORDER edges are committed unconditionally (forwarding must
        // stay possible), and edges with a scratchpad endpoint belong to
        // the local-dependency pass — both are excluded.
        if cx.stages.stage3 {
            for e in region.dfg.edges() {
                match e.kind {
                    EdgeKind::Order => {
                        let Some((pair, _)) = planned_pair(e.src, e.dst) else {
                            continue;
                        };
                        if matrix.kind(pair) == PairKind::StLd {
                            continue;
                        }
                        if first_hop_redundant(region, &closure, e.src, e.dst) {
                            diags.push(
                                cx.diag(
                                    Code::RedundantMde,
                                    Site::Pair {
                                        older: e.src,
                                        younger: e.dst,
                                    },
                                    "ORDER edge is implied by other ordering edges \
                                 (missed stage-3 pruning)"
                                        .to_owned(),
                                ),
                            );
                        }
                    }
                    EdgeKind::May
                        if planned_pair(e.src, e.dst).is_some()
                            && closure.reaches(e.src, e.dst) =>
                    {
                        diags.push(
                            cx.diag(
                                Code::RedundantMde,
                                Site::Pair {
                                    older: e.src,
                                    younger: e.dst,
                                },
                                "MAY edge is implied by guaranteed ordering edges \
                             (missed stage-3 pruning)"
                                    .to_owned(),
                            ),
                        );
                    }
                    _ => {}
                }
            }
        }
        diags
    }
}

// ---------------------------------------------------------------------------
// Pass 3: certificate re-verification
// ---------------------------------------------------------------------------

/// Independently re-verifies every rewrite certificate `nachos-opt`
/// recorded, without trusting the optimizer's own search: witness paths
/// are re-walked edge by edge against the final DFG, address congruence
/// is re-compared on the raw [`MemRef`]s, and arithmetic facts are
/// re-derived from the k-space delta with the audit's own machinery.
/// A no-op when the region was not optimized. Any failure is a hard
/// [`Code::BadCertificate`] error — the driver refuses the region.
pub struct CertLint;

impl CertLint {
    fn check_order_redundant(
        cx: &AuditCx<'_>,
        diags: &mut Vec<Diagnostic>,
        src: NodeId,
        dst: NodeId,
        witness: &[NodeId],
    ) {
        let site = Site::Pair {
            older: src,
            younger: dst,
        };
        let plan = &cx.analysis.plan;
        let still_planned = plan.order.contains(&(src, dst));
        let still_in_dfg = cx
            .region
            .dfg
            .out_edges(src)
            .any(|e| e.dst == dst && e.kind == EdgeKind::Order);
        if still_planned || still_in_dfg {
            diags.push(cx.diag(
                Code::BadCertificate,
                site,
                "ORDER-redundancy certificate for an edge still present".to_owned(),
            ));
        }
        if !crate::optimize::path_valid(&cx.region.dfg, witness, src, dst) {
            diags.push(cx.diag(
                Code::BadCertificate,
                site,
                format!(
                    "ORDER-redundancy witness {witness:?} is not a guaranteed \
                     path from {src} to {dst} in the final DFG"
                ),
            ));
        }
    }

    fn check_may_coalesced(
        cx: &AuditCx<'_>,
        diags: &mut Vec<Diagnostic>,
        removed: (NodeId, NodeId),
        kept: (NodeId, NodeId),
        witness: &[NodeId],
    ) {
        let site = Site::Pair {
            older: removed.0,
            younger: removed.1,
        };
        let dfg = &cx.region.dfg;
        let plan = &cx.analysis.plan;
        let has_may = |(s, d): (NodeId, NodeId)| {
            dfg.out_edges(s)
                .any(|e| e.dst == d && e.kind == EdgeKind::May)
        };
        if plan.may.contains(&removed) || has_may(removed) {
            diags.push(cx.diag(
                Code::BadCertificate,
                site,
                "coalescing certificate for a MAY edge still present".to_owned(),
            ));
        }
        if !plan.may.contains(&kept) || !has_may(kept) {
            diags.push(cx.diag(
                Code::BadCertificate,
                site,
                format!(
                    "coalescing certificate's kept MAY edge {}->{} is missing \
                     from the final plan",
                    kept.0, kept.1
                ),
            ));
            return;
        }
        let mem = |n: NodeId| dfg.node(n).kind.mem_ref();
        // Re-establish the congruence and the ordering claim from scratch:
        // the non-shared endpoints must carry identical memory references,
        // and the witness must order the removed pair through the kept one.
        let (congruent, from, to) = if removed.1 == kept.1 && removed.0 != kept.0 {
            // Shared destination: the kept source completes after the
            // removed source, so the path runs removed.0 ⇝ kept.0.
            (mem(removed.0) == mem(kept.0), removed.0, kept.0)
        } else if removed.0 == kept.0 && removed.1 != kept.1 {
            // Shared source: the removed destination starts after the kept
            // one, so the path runs kept.1 ⇝ removed.1.
            (mem(removed.1) == mem(kept.1), kept.1, removed.1)
        } else {
            diags.push(cx.diag(
                Code::BadCertificate,
                site,
                format!(
                    "coalescing certificate shares no endpoint with its kept \
                     edge {}->{}",
                    kept.0, kept.1
                ),
            ));
            return;
        };
        if !congruent || mem(from).is_none() {
            diags.push(cx.diag(
                Code::BadCertificate,
                site,
                "coalesced MAY edges do not test a congruent address".to_owned(),
            ));
        }
        if !crate::optimize::path_valid(dfg, witness, from, to) {
            diags.push(cx.diag(
                Code::BadCertificate,
                site,
                format!(
                    "coalescing witness {witness:?} is not a guaranteed path \
                     from {from} to {to} in the final DFG"
                ),
            ));
        }
    }

    fn check_may_upgraded(
        cx: &AuditCx<'_>,
        diags: &mut Vec<Diagnostic>,
        older: NodeId,
        younger: NodeId,
        delta: &AffineExpr,
        fact: &crate::optimize::ArithFact,
    ) {
        use crate::optimize::ArithFact;
        let site = Site::Pair { older, younger };
        let matrix = &cx.analysis.matrix;
        let mut bad = |why: String| {
            diags.push(cx.diag(Code::BadCertificate, site, why));
        };
        let idx = |n: NodeId| matrix.ops().iter().position(|&m| m == n);
        let labelled_no = match (idx(older), idx(younger)) {
            (Some(i), Some(j)) if i < j => {
                matrix.get(Pair {
                    older: i,
                    younger: j,
                }) == Some(AliasLabel::No)
            }
            _ => false,
        };
        if !labelled_no {
            bad("upgrade certificate for a pair not labelled NO".to_owned());
            return;
        }
        let Some((dk, kbx, size_a, size_b)) =
            crate::optimize::kspace_delta(cx.region, older, younger)
        else {
            bad("upgrade certificate for a pair outside the stage-5 domain".to_owned());
            return;
        };
        if dk != *delta {
            bad(format!(
                "upgrade certificate's delta {delta:?} disagrees with the \
                 re-derived k-space delta {dk:?}"
            ));
            return;
        }
        let window_lo = -i128::from(size_a) + 1;
        let window_hi = i128::from(size_b) - 1;
        let (lo, hi) = delta_range(&dk, &kbx);
        let holds = match *fact {
            ArithFact::Range { lo: clo, hi: chi } => {
                lo >= clo && hi <= chi && (chi < window_lo || clo > window_hi)
            }
            ArithFact::Congruence { modulus, residue } => {
                let m = i64::try_from(modulus).ok();
                modulus > 0
                    && m.is_some_and(|m| dk.terms().all(|(_, c)| c % m == 0))
                    && dk.constant() == residue
                    && {
                        let (clo, chi) = (lo.max(window_lo), hi.min(window_hi));
                        clo > chi || !congruence_hits(clo, chi, i128::from(residue), modulus)
                    }
            }
            ArithFact::Exact => {
                window_reachable(&dk, &kbx, window_lo, window_hi, ExactBudget::default())
                    == Some(false)
            }
        };
        if !holds {
            bad(format!(
                "upgrade certificate's arithmetic fact {fact:?} does not hold \
                 for delta {dk:?}"
            ));
        }
    }
}

impl Lint for CertLint {
    fn name(&self) -> &'static str {
        "certificates"
    }

    fn run(&self, cx: &AuditCx<'_>) -> Vec<Diagnostic> {
        use crate::optimize::Certificate;
        let Some(opt) = cx.analysis.opt.as_ref() else {
            return Vec::new();
        };
        let mut diags = Vec::new();
        let mut counts = (0usize, 0usize, 0usize);
        for cert in &opt.certs {
            match cert {
                Certificate::OrderRedundant { src, dst, witness } => {
                    counts.0 += 1;
                    Self::check_order_redundant(cx, &mut diags, *src, *dst, witness);
                }
                Certificate::MayCoalesced {
                    removed,
                    kept,
                    witness,
                } => {
                    counts.1 += 1;
                    Self::check_may_coalesced(cx, &mut diags, *removed, *kept, witness);
                }
                Certificate::MayUpgraded {
                    older,
                    younger,
                    delta,
                    fact,
                } => {
                    counts.2 += 1;
                    Self::check_may_upgraded(cx, &mut diags, *older, *younger, delta, fact);
                }
            }
        }
        // Every claimed deletion must be certified, and the before/after
        // ledger must reconcile against the surviving plan.
        let s = &opt.stats;
        let plan = &cx.analysis.plan;
        let ledger_ok = s.order_removed == counts.0
            && s.may_coalesced == counts.1
            && s.may_upgraded == counts.2
            && s.may_upgraded_edges <= s.may_upgraded
            && s.order_before == plan.order.len() + s.order_removed
            && s.may_before == plan.may.len() + s.may_coalesced + s.may_upgraded_edges;
        if !ledger_ok {
            diags.push(cx.diag(
                Code::BadCertificate,
                Site::Region,
                format!(
                    "optimizer ledger does not reconcile: {s:?} vs {} certificates \
                     and a plan of {}/{} ORDER/MAY edges",
                    opt.certs.len(),
                    plan.order.len(),
                    plan.may.len()
                ),
            ));
        }
        diags
    }
}

// ---------------------------------------------------------------------------
// Pass 4: accounting
// ---------------------------------------------------------------------------

/// Cross-checks every total in the analysis report against a recount of
/// the final matrix and plan (catches stage bookkeeping drift).
pub struct AccountingLint;

impl Lint for AccountingLint {
    fn name(&self) -> &'static str {
        "accounting"
    }

    fn run(&self, cx: &AuditCx<'_>) -> Vec<Diagnostic> {
        let r = &cx.analysis.report;
        let matrix = &cx.analysis.matrix;
        let plan = &cx.analysis.plan;
        let mut diags = Vec::new();
        let mut check = |ok: bool, message: String| {
            if !ok {
                diags.push(cx.diag(Code::CountDrift, Site::Region, message));
            }
        };
        check(
            r.region == cx.region.name,
            format!(
                "report names region `{}` but the audited region is `{}`",
                r.region, cx.region.name
            ),
        );
        let recount = matrix.label_counts();
        check(
            r.final_labels == recount,
            format!(
                "final label counts {:?} disagree with a recount of the matrix {recount:?}",
                r.final_labels
            ),
        );
        check(
            r.num_pairs == matrix.num_tracked_pairs(),
            format!(
                "report claims {} tracked pairs but the matrix holds {}",
                r.num_pairs,
                matrix.num_tracked_pairs()
            ),
        );
        check(
            r.num_mem_ops == matrix.num_ops(),
            format!(
                "report claims {} memory ops but the matrix tracks {}",
                r.num_mem_ops,
                matrix.num_ops()
            ),
        );
        check(
            r.after_stage1.total() == r.num_pairs,
            format!(
                "stage-1 label counts total {} but {} pairs are tracked",
                r.after_stage1.total(),
                r.num_pairs
            ),
        );
        check(
            r.after_stage2.total() == r.num_pairs,
            format!(
                "stage-2 label counts total {} but {} pairs are tracked",
                r.after_stage2.total(),
                r.num_pairs
            ),
        );
        let mdes = (plan.order.len(), plan.forward.len(), plan.may.len());
        check(
            r.mdes == mdes,
            format!(
                "report claims MDE counts {:?} but the plan holds {mdes:?}",
                r.mdes
            ),
        );
        check(
            r.pruned == plan.num_pruned(),
            format!(
                "report claims {} pruned relations but the plan dropped {}",
                r.pruned,
                plan.num_pruned()
            ),
        );
        diags
    }
}

// ---------------------------------------------------------------------------
// Pass 5: resource lints
// ---------------------------------------------------------------------------

/// Comparator fan-in, token fan-out, dead nodes, unreferenced symbols.
pub struct ResourceLint;

impl Lint for ResourceLint {
    fn name(&self) -> &'static str {
        "resources"
    }

    fn run(&self, cx: &AuditCx<'_>) -> Vec<Diagnostic> {
        let region = cx.region;
        let matrix = &cx.analysis.matrix;
        let mut diags = Vec::new();

        // A-W03: comparator-site fan-in over budget (Figure 14's tail).
        for (i, fanin) in may_fanin(cx.analysis).into_iter().enumerate() {
            if fanin > cx.config.may_fanin_budget {
                diags.push(cx.diag(
                    Code::FaninOverBudget,
                    Site::Node(matrix.node(i)),
                    format!(
                        "MAY fan-in {fanin} exceeds the comparator budget of {}",
                        cx.config.may_fanin_budget
                    ),
                ));
            }
        }

        // A-I01: token fan-out over budget.
        for n in region.dfg.node_ids() {
            let fanout = region.dfg.out_edges(n).filter(|e| e.kind.is_mde()).count();
            if fanout > cx.config.token_fanout_budget {
                diags.push(cx.diag(
                    Code::TokenFanout,
                    Site::Node(n),
                    format!(
                        "token fan-out {fanout} exceeds the budget of {}",
                        cx.config.token_fanout_budget
                    ),
                ));
            }
        }

        // A-I02: value-producing nodes nobody consumes.
        for n in region.dfg.node_ids() {
            let kind = &region.dfg.node(n).kind;
            if kind.is_store() || matches!(kind, OpKind::Output) {
                continue;
            }
            if region.dfg.out_edges(n).all(|e| e.kind != EdgeKind::Data) {
                diags.push(cx.diag(
                    Code::DeadNode,
                    Site::Node(n),
                    format!("{} node produces a value no operation consumes", kind),
                ));
            }
        }

        // A-I03: symbol-table entries no memory reference uses.
        let mut used_bases = vec![false; region.bases.len()];
        let mut used_loops = vec![false; region.loops.len()];
        let mut used_params = vec![false; region.params.len()];
        let mut used_unknowns = vec![false; region.num_unknowns];
        let mark_loop = |expr: &AffineExpr, used_loops: &mut Vec<bool>| {
            for (l, _) in expr.terms() {
                if let Some(slot) = used_loops.get_mut(l.index()) {
                    *slot = true;
                }
            }
        };
        for n in region.dfg.node_ids() {
            let Some(mem) = region.dfg.node(n).kind.mem_ref() else {
                continue;
            };
            match &mem.ptr {
                PtrExpr::Affine { base, offset } => {
                    used_bases[base.index()] = true;
                    mark_loop(offset, &mut used_loops);
                }
                PtrExpr::MultiDim { base, subs, .. } => {
                    used_bases[base.index()] = true;
                    for sub in subs {
                        mark_loop(&sub.index, &mut used_loops);
                        for p in [sub.stride.param, sub.extent.and_then(|e| e.param)]
                            .into_iter()
                            .flatten()
                        {
                            used_params[p.index()] = true;
                        }
                    }
                }
                PtrExpr::Unknown { source, .. } => {
                    used_unknowns[source.index()] = true;
                }
            }
        }
        let mut unused = |what: String| {
            diags.push(cx.diag(Code::UnreferencedSymbol, Site::Region, what));
        };
        for (i, &used) in used_bases.iter().enumerate() {
            if !used {
                unused(format!("base b{i} is never referenced"));
            }
        }
        for (i, &used) in used_loops.iter().enumerate() {
            if !used {
                let (_, info) = region
                    .loops
                    .iter()
                    .nth(i)
                    .expect("index within loop nest length");
                unused(format!(
                    "loop l{i} (`{}`) never appears in an access expression",
                    info.name
                ));
            }
        }
        for (i, &used) in used_params.iter().enumerate() {
            if !used {
                unused(format!("param p{i} is never referenced"));
            }
        }
        for (i, &used) in used_unknowns.iter().enumerate() {
            if !used {
                unused(format!("unknown pointer source u{i} is never referenced"));
            }
        }
        diags
    }
}

// ---------------------------------------------------------------------------
// Differential replay
// ---------------------------------------------------------------------------

/// Replays the reference executor's address walk under `binding` and
/// reports every NO pair whose byte intervals collide at some invocation
/// ([`Code::DynamicCollision`]).
///
/// Contract-justified NO pairs (different `restrict` scopes, incompatible
/// access types) are exempt: they are semantic promises about the program,
/// and a binding may legally place such accesses at overlapping addresses.
#[must_use]
pub fn differential_no_collisions(
    region: &Region,
    matrix: &AliasMatrix,
    binding: &Binding,
    invocations: u64,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // An incomplete binding or a zero-trip nest leaves nothing to replay.
    if binding.base_addrs.len() < region.bases.len()
        || binding.unknowns.len() < region.num_unknowns
        || binding.params.len() < region.params.len()
        || (!region.loops.is_empty() && region.loops.total_invocations() == 0)
    {
        return diags;
    }
    let mem = |idx: usize| -> &MemRef {
        region
            .dfg
            .node(matrix.node(idx))
            .kind
            .mem_ref()
            .expect("matrix tracks memory ops")
    };
    let mut pairs: Vec<Pair> = matrix
        .pairs()
        .filter(|&(pair, _, label)| {
            if !label.is_no() {
                return false;
            }
            let (a, b) = (mem(pair.older), mem(pair.younger));
            // Contract exemptions.
            if let (Some(sa), Some(sb)) = (a.noalias_scope, b.noalias_scope) {
                if sa != sb {
                    return false;
                }
            }
            a.ty.compatible(b.ty)
        })
        .map(|(pair, _, _)| pair)
        .collect();
    if pairs.is_empty() {
        return diags;
    }
    let nest_total = region.loops.total_invocations().max(1);
    for inv in 0..invocations {
        let iv = if region.loops.is_empty() {
            Vec::new()
        } else {
            region.loops.iteration_vector(inv % nest_total)
        };
        let unknown_vals = binding.unknown_values(inv);
        let ctx = binding.eval_ctx(&iv, &unknown_vals);
        let spans: Vec<(u128, u128)> = (0..matrix.num_ops())
            .map(|idx| {
                let m = mem(idx);
                let lo = u128::from(m.eval(&ctx));
                (lo, lo + u128::from(m.size))
            })
            .collect();
        pairs.retain(|&pair| {
            let (a_lo, a_hi) = spans[pair.older];
            let (b_lo, b_hi) = spans[pair.younger];
            if a_lo < b_hi && b_lo < a_hi {
                diags.push(Diagnostic::new(
                    Code::DynamicCollision,
                    &region.name,
                    Site::Pair {
                        older: matrix.node(pair.older),
                        younger: matrix.node(pair.younger),
                    },
                    format!(
                        "NO pair collides dynamically at invocation {inv}: \
                         [{a_lo:#x}, {a_hi:#x}) overlaps [{b_lo:#x}, {b_hi:#x})"
                    ),
                ));
                false // one collision per pair is evidence enough
            } else {
                true
            }
        });
        if pairs.is_empty() {
            break;
        }
    }
    finish(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::compile;
    use nachos_ir::{AffineExpr, IntOp, LoopInfo, MemRef, RegionBuilder, UnknownPattern};

    fn errors(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
        diags.iter().filter(|d| d.is_error()).collect()
    }

    /// Two stores to the same address whose data chains are independent —
    /// the ordering between them exists only as an ORDER MDE.
    fn token_region() -> Region {
        let mut b = RegionBuilder::new("token");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let x = b.input();
        b.store(m.clone(), &[x]);
        let y = b.int_op(IntOp::Add, &[x]);
        let s2 = b.store(m, &[y]);
        b.output(s2);
        b.finish()
    }

    #[test]
    fn clean_pipeline_audits_clean() {
        let mut r = token_region();
        let analysis = compile(&mut r, StageConfig::full());
        let diags = audit(&r, &analysis, StageConfig::full());
        assert!(
            errors(&diags).is_empty(),
            "unexpected errors: {:?}",
            errors(&diags)
        );
    }

    #[test]
    fn every_stage_config_audits_clean() {
        for stages in [
            StageConfig::full(),
            StageConfig::baseline(),
            StageConfig::stage1_only(),
        ] {
            let mut r = token_region();
            let analysis = compile(&mut r, stages);
            let diags = audit(&r, &analysis, stages);
            assert!(
                errors(&diags).is_empty(),
                "{stages:?}: {:?}",
                errors(&diags)
            );
        }
    }

    #[test]
    fn hand_broken_no_label_is_unsound() {
        let mut r = token_region();
        let mut analysis = compile(&mut r, StageConfig::full());
        let pair = Pair {
            older: 0,
            younger: 1,
        };
        assert_eq!(analysis.matrix.get(pair), Some(AliasLabel::MustExact));
        analysis.matrix.set(pair, AliasLabel::No);
        let diags = audit(&r, &analysis, StageConfig::full());
        assert!(
            diags
                .iter()
                .any(|d| d.code == Code::UnsoundNo && d.is_error()),
            "auditor missed the unsound NO: {diags:?}"
        );
    }

    #[test]
    fn hand_deleted_order_edge_is_a_race() {
        let mut r = token_region();
        let analysis = compile(&mut r, StageConfig::full());
        let order_edges: Vec<usize> = r
            .dfg
            .edges()
            .enumerate()
            .filter(|(_, e)| e.kind == EdgeKind::Order)
            .map(|(i, _)| i)
            .collect();
        assert!(!order_edges.is_empty(), "token region must carry an ORDER");
        r.dfg.remove_edge_unchecked(order_edges[0]);
        let diags = audit(&r, &analysis, StageConfig::full());
        assert!(
            diags
                .iter()
                .any(|d| d.code == Code::MissingChain && d.is_error()),
            "auditor missed the race: {diags:?}"
        );
        assert!(
            diags.iter().any(|d| d.code == Code::PlanDrift),
            "plan/DFG drift should also surface: {diags:?}"
        );
    }

    #[test]
    fn must_flavor_mismatch_is_flagged() {
        let mut r = token_region();
        let mut analysis = compile(&mut r, StageConfig::full());
        let pair = Pair {
            older: 0,
            younger: 1,
        };
        analysis.matrix.set(pair, AliasLabel::MustPartial);
        let diags = audit(&r, &analysis, StageConfig::full());
        assert!(
            diags
                .iter()
                .any(|d| d.code == Code::MustMismatch && d.is_error()),
            "{diags:?}"
        );
    }

    #[test]
    fn report_drift_is_flagged() {
        let mut r = token_region();
        let mut analysis = compile(&mut r, StageConfig::full());
        analysis.report.num_pairs += 1;
        let diags = audit(&r, &analysis, StageConfig::full());
        assert!(
            diags.iter().any(|d| d.code == Code::CountDrift),
            "{diags:?}"
        );
    }

    #[test]
    fn precision_loss_attributes_disabled_stage() {
        // Two arguments traced to distinct caller objects: stage 2 decides
        // NO, so with stage 2 disabled the MAY is attributed there.
        let mut b = RegionBuilder::new("attr");
        let a0 = b.arg(0, Provenance::Object(1));
        let a1 = b.arg(1, Provenance::Object(2));
        b.store(MemRef::affine(a0, AffineExpr::zero()), &[]);
        b.load(MemRef::affine(a1, AffineExpr::zero()), &[]);
        let mut r = b.finish();
        let stages = StageConfig::stage1_only();
        let analysis = compile(&mut r, stages);
        let diags = audit(&r, &analysis, stages);
        let loss: Vec<_> = diags
            .iter()
            .filter(|d| d.code == Code::PrecisionLoss)
            .collect();
        assert_eq!(loss.len(), 1, "{diags:?}");
        assert!(
            loss[0].message.contains("stage 2 (disabled)"),
            "{}",
            loss[0].message
        );
        assert!(errors(&diags).is_empty(), "{:?}", errors(&diags));
    }

    #[test]
    fn differential_catches_colliding_no() {
        // Two unknown-pointer accesses the binding pins to the same
        // address; force their label to NO and replay.
        let mut b = RegionBuilder::new("diff");
        let u0 = b.unknown_ptr();
        let u1 = b.unknown_ptr();
        let x = b.input();
        b.store(MemRef::unknown(u0, 0), &[x]);
        b.load(MemRef::unknown(u1, 0), &[]);
        let mut r = b.finish();
        let mut analysis = compile(&mut r, StageConfig::full());
        let pair = Pair {
            older: 0,
            younger: 1,
        };
        assert_eq!(analysis.matrix.get(pair), Some(AliasLabel::May));
        analysis.matrix.set(pair, AliasLabel::No);
        let binding = Binding {
            base_addrs: Vec::new(),
            params: Vec::new(),
            unknowns: vec![UnknownPattern::Fixed(0x1000), UnknownPattern::Fixed(0x1000)],
        };
        let diags = differential_no_collisions(&r, &analysis.matrix, &binding, 4);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].code, Code::DynamicCollision);
        assert!(diags[0].is_error());
    }

    #[test]
    fn differential_accepts_sound_no() {
        let mut b = RegionBuilder::new("diff-ok");
        let g = b.global("g", 64, 0);
        b.store(MemRef::affine(g, AffineExpr::zero()), &[]);
        b.load(MemRef::affine(g, AffineExpr::constant_expr(16)), &[]);
        let mut r = b.finish();
        let analysis = compile(&mut r, StageConfig::full());
        let binding = Binding {
            base_addrs: vec![0x1000],
            params: Vec::new(),
            unknowns: Vec::new(),
        };
        let diags = differential_no_collisions(&r, &analysis.matrix, &binding, 8);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn resource_lints_flag_unreferenced_symbols_and_dead_nodes() {
        let mut b = RegionBuilder::new("resources");
        let g = b.global("g", 64, 0);
        let _unused = b.global("spare", 64, 1);
        let _dead = b.input();
        b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
        let mut r = b.finish();
        let analysis = compile(&mut r, StageConfig::full());
        let diags = audit(&r, &analysis, StageConfig::full());
        assert!(
            diags.iter().any(|d| d.code == Code::UnreferencedSymbol),
            "{diags:?}"
        );
        assert!(diags.iter().any(|d| d.code == Code::DeadNode), "{diags:?}");
        assert!(errors(&diags).is_empty(), "{:?}", errors(&diags));
    }

    #[test]
    fn strided_loop_region_audits_clean() {
        let mut b = RegionBuilder::new("strided");
        let i = b.enclosing_loop(LoopInfo::range("i", 0, 8));
        let g = b.global("g", 4096, 0);
        let x = b.input();
        b.store(MemRef::affine(g, AffineExpr::var(i).scaled(8)), &[x]);
        let ld = b.load(MemRef::affine(g, AffineExpr::var(i).scaled(8).plus(8)), &[]);
        let out = b.int_op(IntOp::Add, &[ld, x]);
        b.output(out);
        let mut r = b.finish();
        let analysis = compile(&mut r, StageConfig::full());
        let diags = audit(&r, &analysis, StageConfig::full());
        assert!(errors(&diags).is_empty(), "{:?}", errors(&diags));
    }

    #[test]
    fn scalar_truth_distinguishes_sometimes_from_undecidable() {
        let bx = IvBox::from_bounds(vec![(0, 9)]);
        // delta = 8i - 36: hits the window sometimes, misses sometimes.
        let delta = AffineExpr::var(nachos_ir::LoopId::new(0))
            .scaled(8)
            .plus(-36);
        assert_eq!(scalar_truth(&delta, &bx, 8, 8, 1 << 12), Truth::Sometimes);
        // Constant 0 difference: always exact.
        assert_eq!(
            scalar_truth(&AffineExpr::zero(), &bx, 8, 8, 0),
            Truth::AlwaysExact
        );
        // Disjoint stride.
        let far = AffineExpr::var(nachos_ir::LoopId::new(0))
            .scaled(8)
            .plus(512);
        assert_eq!(scalar_truth(&far, &bx, 8, 8, 0), Truth::Never);
    }

    /// An ambiguous store MAY-feeding two congruent accesses ordered by a
    /// data chain — the optimizer coalesces one comparator edge.
    fn coalescible_region() -> Region {
        let mut b = RegionBuilder::new("cert-coalesce");
        let g = b.global("g", 256, 0);
        let a0 = b.arg(0, Provenance::Unknown);
        b.store(MemRef::affine(a0, AffineExpr::zero()), &[]);
        let m = MemRef::affine(g, AffineExpr::constant_expr(8));
        let ld = b.load(m.clone(), &[]);
        let t = b.int_op(IntOp::Add, &[ld]);
        b.store(m, &[t]);
        b.finish()
    }

    /// A stepped loop only stage 5 sees through — the optimizer upgrades
    /// the MAY pair with a congruence certificate.
    fn stepped_region() -> Region {
        let mut b = RegionBuilder::new("cert-stepped");
        let iv = b.enclosing_loop(LoopInfo {
            name: "i".into(),
            lower: 0,
            upper: 4097,
            step: 16,
        });
        let g = b.global("g", 8192, 0);
        b.store(MemRef::affine(g, AffineExpr::var(iv)), &[]);
        b.load(MemRef::affine(g, AffineExpr::constant_expr(8)), &[]);
        b.finish()
    }

    fn bad_certs(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
        diags
            .iter()
            .filter(|d| d.code == Code::BadCertificate)
            .collect()
    }

    #[test]
    fn corrupted_coalescing_witness_is_rejected() {
        let mut r = coalescible_region();
        let mut analysis = compile(&mut r, StageConfig::full());
        crate::optimize::optimize(&mut r, &mut analysis);
        let opt = analysis.opt.as_mut().expect("optimizer ran");
        assert_eq!(opt.stats.may_coalesced, 1, "{:?}", opt.certs);
        assert!(bad_certs(&audit(&r, &analysis, StageConfig::full())).is_empty());

        let opt = analysis.opt.as_mut().expect("optimizer ran");
        let crate::optimize::Certificate::MayCoalesced { witness, .. } = &mut opt.certs[0] else {
            panic!("expected a coalescing certificate");
        };
        witness.reverse();
        let diags = audit(&r, &analysis, StageConfig::full());
        assert!(!bad_certs(&diags).is_empty(), "{diags:?}");
        assert!(bad_certs(&diags)[0].is_error());
    }

    #[test]
    fn forged_upgrade_fact_is_rejected() {
        let mut r = stepped_region();
        let mut analysis = compile(&mut r, StageConfig::full());
        crate::optimize::optimize(&mut r, &mut analysis);
        let opt = analysis.opt.as_mut().expect("optimizer ran");
        assert_eq!(opt.stats.may_upgraded, 1, "{:?}", opt.certs);
        assert!(bad_certs(&audit(&r, &analysis, StageConfig::full())).is_empty());

        let opt = analysis.opt.as_mut().expect("optimizer ran");
        let crate::optimize::Certificate::MayUpgraded { fact, .. } = &mut opt.certs[0] else {
            panic!("expected an upgrade certificate");
        };
        // Claim a residue class the delta does not actually inhabit.
        *fact = crate::optimize::ArithFact::Congruence {
            modulus: 16,
            residue: 0,
        };
        let diags = audit(&r, &analysis, StageConfig::full());
        assert!(!bad_certs(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn unreconciled_ledger_is_rejected() {
        let mut r = coalescible_region();
        let mut analysis = compile(&mut r, StageConfig::full());
        crate::optimize::optimize(&mut r, &mut analysis);
        analysis
            .opt
            .as_mut()
            .expect("optimizer ran")
            .stats
            .order_removed += 1;
        let diags = audit(&r, &analysis, StageConfig::full());
        assert!(!bad_certs(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn dropped_certificate_is_rejected() {
        let mut r = coalescible_region();
        let mut analysis = compile(&mut r, StageConfig::full());
        crate::optimize::optimize(&mut r, &mut analysis);
        analysis
            .opt
            .as_mut()
            .expect("optimizer ran")
            .certs
            .pop()
            .expect("one certificate");
        let diags = audit(&r, &analysis, StageConfig::full());
        assert!(!bad_certs(&diags).is_empty(), "{diags:?}");
    }

    #[test]
    fn certificate_about_surviving_edge_is_rejected() {
        let mut r = token_region();
        let mut analysis = compile(&mut r, StageConfig::full());
        crate::optimize::optimize(&mut r, &mut analysis);
        let (s, d) = analysis.plan.order[0];
        let opt = analysis.opt.as_mut().expect("optimizer ran");
        opt.certs
            .push(crate::optimize::Certificate::OrderRedundant {
                src: s,
                dst: d,
                witness: vec![s, d],
            });
        opt.stats.order_removed += 1;
        let diags = audit(&r, &analysis, StageConfig::full());
        assert!(
            bad_certs(&diags)
                .iter()
                .any(|d| d.message.contains("still present")),
            "{diags:?}"
        );
    }

    #[test]
    fn diagnostics_are_sorted_and_displayed() {
        let a = Diagnostic::new(Code::DeadNode, "r", Site::Node(NodeId::new(3)), "x".into());
        let b = Diagnostic::new(
            Code::UnsoundNo,
            "r",
            Site::Pair {
                older: NodeId::new(0),
                younger: NodeId::new(1),
            },
            "y".into(),
        );
        let sorted = finish(vec![a.clone(), b.clone(), a.clone()]);
        assert_eq!(sorted.len(), 2, "dedup collapses the duplicate");
        assert_eq!(sorted[0].code, Code::UnsoundNo, "errors sort first");
        assert_eq!(sorted[0].to_string(), "error[A-E01] `r` n0->n1: y");
        assert_eq!(sorted[1].to_string(), "info[A-I02] `r` n3: x");
    }
}
