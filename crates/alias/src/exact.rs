//! Exact integer reachability of an affine expression over a box.
//!
//! The interval+GCD test of [`crate::afftest`] is sound but incomplete for
//! multi-variable differences: `Δ = 2x + 3y` with `x, y ∈ [0, 1]` reaches
//! only `{0, 2, 3, 5}`, yet its interval `[0, 5]` and coefficient gcd `1`
//! cannot exclude a window like `[1, 1]`. Because our iteration domains
//! are boxes, the reachable-value set is a sumset of arithmetic
//! progressions and can be computed *exactly* with a bitset dynamic
//! program when the value span is moderate — the integer-exactness step
//! that plays the role of the Omega test's final refinement for this
//! domain shape.

use crate::afftest::IvBox;
use nachos_ir::AffineExpr;

/// Budget knobs for the exact test; defaults keep compile times trivial
/// for every Table II region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExactBudget {
    /// Maximum value span (`max − min + 1`) tracked by the bitset.
    pub max_span: u64,
    /// Maximum trip count any single variable may contribute.
    pub max_trips: u64,
}

impl Default for ExactBudget {
    fn default() -> Self {
        Self {
            max_span: 1 << 22,
            max_trips: 4096,
        }
    }
}

/// Dense bitset over the value range `[min, min + span)`.
struct ValueSet {
    min: i128,
    words: Vec<u64>,
}

impl ValueSet {
    fn new(min: i128, span: u64) -> Self {
        Self {
            min,
            words: vec![0; (span as usize).div_ceil(64)],
        }
    }

    fn insert(&mut self, v: i128) {
        let off = (v - self.min) as usize;
        self.words[off / 64] |= 1 << (off % 64);
    }

    /// `self ∪ (self << shift_bits)` within the allocated range, where the
    /// shift is in value units.
    fn or_shifted(&mut self, shift: i128) {
        debug_assert!(shift >= 0);
        let bits = shift as usize;
        let (word_shift, bit_shift) = (bits / 64, bits % 64);
        let n = self.words.len();
        if word_shift >= n {
            return;
        }
        // Walk top-down so each source word is read before being merged.
        for i in (word_shift..n).rev() {
            let mut v = self.words[i - word_shift] << bit_shift;
            if bit_shift > 0 && i > word_shift {
                v |= self.words[i - word_shift - 1] >> (64 - bit_shift);
            }
            self.words[i] |= v;
        }
    }

    fn any_in(&self, lo: i128, hi: i128) -> bool {
        let lo = lo.max(self.min);
        let hi = hi.min(self.min + self.words.len() as i128 * 64 - 1);
        if lo > hi {
            return false;
        }
        // Scan word-aligned with edge masks.
        let (lo_off, hi_off) = ((lo - self.min) as usize, (hi - self.min) as usize);
        let (lw, hw) = (lo_off / 64, hi_off / 64);
        for w in lw..=hw {
            if w >= self.words.len() {
                break;
            }
            let mut mask = u64::MAX;
            if w == lw {
                mask &= u64::MAX << (lo_off % 64);
            }
            if w == hw {
                let top = hi_off % 64;
                mask &= if top == 63 {
                    u64::MAX
                } else {
                    (1u64 << (top + 1)) - 1
                };
            }
            if self.words[w] & mask != 0 {
                return true;
            }
        }
        false
    }
}

/// Computes whether `delta(iv)` can take a value in `[window_lo,
/// window_hi]` for some integer `iv` in the box — **exactly**. Returns
/// `None` when the instance exceeds the budget (caller falls back to the
/// conservative answer).
#[must_use]
pub fn window_reachable(
    delta: &AffineExpr,
    bx: &IvBox,
    window_lo: i128,
    window_hi: i128,
    budget: ExactBudget,
) -> Option<bool> {
    // Value extremes via interval arithmetic.
    let (mut lo, mut hi) = (i128::from(delta.constant()), i128::from(delta.constant()));
    for (l, c) in delta.terms() {
        let (bl, bh) = bx.bound(l.index());
        let c = i128::from(c);
        let (a, b) = (c * i128::from(bl), c * i128::from(bh));
        lo += a.min(b);
        hi += a.max(b);
        let trips = (bh - bl + 1) as u64;
        if trips > budget.max_trips {
            return None;
        }
    }
    let span = (hi - lo + 1) as u64;
    if span > budget.max_span {
        return None;
    }
    let mut set = ValueSet::new(lo, span);
    // Seed with the constant plus each variable pinned at the end that
    // minimizes its contribution; then fold in each variable's
    // progression.
    let mut base = i128::from(delta.constant());
    for (l, c) in delta.terms() {
        let (bl, bh) = bx.bound(l.index());
        let c = i128::from(c);
        base += (c * i128::from(bl)).min(c * i128::from(bh));
    }
    set.insert(base);
    for (l, c) in delta.terms() {
        let (bl, bh) = bx.bound(l.index());
        let step = i128::from(c).unsigned_abs() as i128;
        if step == 0 {
            continue;
        }
        for _ in bl..bh {
            set.or_shifted(step);
        }
    }
    Some(set.any_in(window_lo, window_hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nachos_ir::LoopId;

    fn l(i: usize) -> LoopId {
        LoopId::new(i)
    }

    #[test]
    fn catches_what_gcd_misses() {
        // 2x + 3y, x,y in [0,1]: reachable {0,2,3,5}; window [1,1] and
        // [4,4] unreachable, [2,3] reachable.
        let delta = AffineExpr::from_terms(&[(l(0), 2), (l(1), 3)], 0);
        let bx = IvBox::from_bounds(vec![(0, 1), (0, 1)]);
        let b = ExactBudget::default();
        assert_eq!(window_reachable(&delta, &bx, 1, 1, b), Some(false));
        assert_eq!(window_reachable(&delta, &bx, 4, 4, b), Some(false));
        assert_eq!(window_reachable(&delta, &bx, 2, 3, b), Some(true));
        assert_eq!(window_reachable(&delta, &bx, 0, 0, b), Some(true));
        assert_eq!(window_reachable(&delta, &bx, 5, 9, b), Some(true));
        assert_eq!(window_reachable(&delta, &bx, 6, 9, b), Some(false));
    }

    #[test]
    fn negative_coefficients() {
        // 4x - 6y, x in [0,2], y in [0,1]: {0,4,8} ∪ {-6,-2,2}.
        let delta = AffineExpr::from_terms(&[(l(0), 4), (l(1), -6)], 0);
        let bx = IvBox::from_bounds(vec![(0, 2), (0, 1)]);
        let b = ExactBudget::default();
        assert_eq!(window_reachable(&delta, &bx, -1, -1, b), Some(false));
        assert_eq!(window_reachable(&delta, &bx, -2, -2, b), Some(true));
        assert_eq!(window_reachable(&delta, &bx, 3, 3, b), Some(false));
        assert_eq!(window_reachable(&delta, &bx, -6, -6, b), Some(true));
    }

    #[test]
    fn constant_expression() {
        let delta = AffineExpr::constant_expr(7);
        let bx = IvBox::from_bounds(vec![]);
        let b = ExactBudget::default();
        assert_eq!(window_reachable(&delta, &bx, 7, 7, b), Some(true));
        assert_eq!(window_reachable(&delta, &bx, 0, 6, b), Some(false));
    }

    #[test]
    fn budget_overflow_returns_none() {
        let delta = AffineExpr::from_terms(&[(l(0), 1 << 20)], 0);
        let bx = IvBox::from_bounds(vec![(0, 1 << 15)]);
        assert_eq!(
            window_reachable(&delta, &bx, 0, 0, ExactBudget::default()),
            None
        );
        let tight = ExactBudget {
            max_trips: 4,
            ..ExactBudget::default()
        };
        let small = AffineExpr::from_terms(&[(l(0), 2)], 0);
        let bx5 = IvBox::from_bounds(vec![(0, 5)]);
        assert_eq!(window_reachable(&small, &bx5, 0, 0, tight), None);
    }

    #[test]
    fn matches_bruteforce_on_grid() {
        let b = ExactBudget::default();
        for c0 in [-3i64, 2, 5] {
            for c1 in [-7i64, 4] {
                let delta = AffineExpr::from_terms(&[(l(0), c0), (l(1), c1)], 1);
                let bx = IvBox::from_bounds(vec![(-2, 3), (0, 4)]);
                let mut reachable = std::collections::HashSet::new();
                for x in -2..=3i128 {
                    for y in 0..=4i128 {
                        reachable.insert(1 + i128::from(c0) * x + i128::from(c1) * y);
                    }
                }
                for w in -60..=60i128 {
                    assert_eq!(
                        window_reachable(&delta, &bx, w, w, b),
                        Some(reachable.contains(&w)),
                        "c0={c0} c1={c1} w={w}"
                    );
                }
            }
        }
    }
}
