//! Numeric dependence tests on affine address differences.
//!
//! Both Stage 1 (SCEV-style) and Stage 4 (polyhedral-style) reduce alias
//! questions to: *can the affine difference `Δ(iv)` of two byte addresses
//! fall inside the overlap window for some induction-variable vector inside
//! the iteration box?* Because the iteration domain of an acceleration
//! region is a box (each loop has independent constant bounds), interval
//! (Banerjee) bounds combined with a GCD congruence test decide the
//! question exactly for single-variable differences and soundly for
//! multi-variable ones.

use nachos_ir::{AffineExpr, LoopNest};

/// Inclusive per-loop induction-variable bounds (the iteration box).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IvBox {
    bounds: Vec<(i64, i64)>,
}

impl IvBox {
    /// Derives the box from a loop nest. A zero-trip loop contributes the
    /// degenerate range `[lower, lower]` (the region then never executes,
    /// so any sound answer is acceptable).
    #[must_use]
    pub fn from_nest(nest: &LoopNest) -> Self {
        let bounds = nest
            .iter()
            .map(|(_, l)| (l.lower, l.max_iv().unwrap_or(l.lower)))
            .collect();
        Self { bounds }
    }

    /// A box given explicitly, for tests.
    #[must_use]
    pub fn from_bounds(bounds: Vec<(i64, i64)>) -> Self {
        Self { bounds }
    }

    /// Bounds of loop `index`, defaulting to a degenerate `[0, 0]` range
    /// for loops outside the recorded nest.
    #[must_use]
    pub fn bound(&self, index: usize) -> (i64, i64) {
        self.bounds.get(index).copied().unwrap_or((0, 0))
    }
}

/// Result of testing whether two accesses overlap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Overlap {
    /// The accesses can never overlap — NO alias.
    Disjoint,
    /// The accesses always cover exactly the same bytes — MUST (exact).
    Exact,
    /// The accesses always overlap, but not exactly — MUST (partial).
    Partial,
    /// The test cannot decide — MAY alias.
    Unknown,
}

/// Minimum and maximum of an affine expression over the box.
///
/// Computed in `i128` so coefficient·bound products cannot overflow.
#[must_use]
pub fn delta_range(delta: &AffineExpr, bx: &IvBox) -> (i128, i128) {
    let mut lo = i128::from(delta.constant());
    let mut hi = lo;
    for (l, c) in delta.terms() {
        let (bl, bh) = bx.bound(l.index());
        let c = i128::from(c);
        let (a, b) = (c * i128::from(bl), c * i128::from(bh));
        lo += a.min(b);
        hi += a.max(b);
    }
    (lo, hi)
}

/// Greatest common divisor.
#[must_use]
pub fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// `true` if some value `v ≡ residue (mod modulus)` lies in `[lo, hi]`.
/// A modulus of 0 means the only reachable value is `residue` itself.
pub(crate) fn congruence_hits(lo: i128, hi: i128, residue: i128, modulus: u64) -> bool {
    if lo > hi {
        return false;
    }
    if modulus == 0 {
        return residue >= lo && residue <= hi;
    }
    let m = i128::from(modulus);
    // Smallest value >= lo congruent to residue.
    let first = lo + (residue - lo).rem_euclid(m);
    first <= hi
}

/// Reparameterizes an affine delta from induction-variable space to
/// *iteration-count* space (k-space): for every loop `l` of the nest with
/// `iv_l = lower_l + k_l · step_l`, the term `c_l · iv_l` becomes the
/// constant contribution `c_l · lower_l` plus the term `(c_l · step_l) ·
/// k_l` over the box `k_l ∈ [0, trips_l - 1]`.
///
/// The rewritten pair describes **exactly** the set of values the original
/// delta takes at runtime (`LoopNest::iteration_vector` steps ivs the same
/// way), whereas [`IvBox::from_nest`] is a *dense* over-approximation for
/// non-unit steps: it includes iv values between steps that no iteration
/// reaches. For unit-step loops the two parameterizations have identical
/// value sets. Stage 5 and the audit's ground-truth derivation both test
/// in k-space, so their verdicts agree by construction.
///
/// Terms naming loops outside the nest keep their coefficient: such loops
/// have no runtime iv and every consumer pins them to the degenerate
/// `[0, 0]` box, which the returned box reproduces. A zero-trip loop
/// contributes the degenerate `k ∈ [0, 0]` (the region never executes).
/// If any product would overflow `i64`, the original (dense, sound)
/// parameterization is returned unchanged.
#[must_use]
pub fn iteration_space(delta: &AffineExpr, nest: &LoopNest) -> (AffineExpr, IvBox) {
    let fallback = || (delta.clone(), IvBox::from_nest(nest));
    let mut constant = i128::from(delta.constant());
    let mut terms: Vec<(nachos_ir::LoopId, i64)> = Vec::new();
    let mut bounds = vec![(0i64, 0i64); nest.len()];
    for (id, l) in nest.iter() {
        bounds[id.index()] = (0, l.trip_count().saturating_sub(1) as i64);
    }
    for (l, c) in delta.terms() {
        match nest.get(l) {
            Some(info) => {
                let Some(coeff) = c.checked_mul(info.step) else {
                    return fallback();
                };
                constant += i128::from(c) * i128::from(info.lower);
                terms.push((l, coeff));
            }
            // Out-of-nest loop: consumers pin it to [0, 0], so the term
            // contributes nothing either way; keep it unchanged.
            None => terms.push((l, c)),
        }
    }
    let Ok(constant) = i64::try_from(constant) else {
        return fallback();
    };
    (
        AffineExpr::from_terms(&terms, constant),
        IvBox::from_bounds(bounds),
    )
}

/// Tests whether access A (`size_a` bytes) starting at byte offset
/// `delta(iv)` relative to access B (`size_b` bytes) can overlap B for some
/// `iv` in the box.
///
/// Overlap occurs exactly when `-(size_a-1) <= delta <= size_b-1`. The test
/// combines interval bounds over the box with a GCD congruence argument:
/// every reachable `delta` value is congruent to the constant term modulo
/// the gcd of the coefficients.
///
/// Returned verdicts are *sound*: `Disjoint` / `Exact` / `Partial` are only
/// reported when they hold for **all** iteration vectors in the box.
#[must_use]
pub fn overlap_test(delta: &AffineExpr, bx: &IvBox, size_a: u32, size_b: u32) -> Overlap {
    let window_lo = -i128::from(size_a) + 1;
    let window_hi = i128::from(size_b) - 1;
    if delta.is_constant() {
        let d = i128::from(delta.constant());
        return if d == 0 && size_a == size_b {
            Overlap::Exact
        } else if d >= window_lo && d <= window_hi {
            Overlap::Partial
        } else {
            Overlap::Disjoint
        };
    }
    let (lo, hi) = delta_range(delta, bx);
    if lo == hi {
        // The variable terms are constant over the (possibly degenerate)
        // box — same as the constant case.
        return if lo == 0 && size_a == size_b {
            Overlap::Exact
        } else if lo >= window_lo && lo <= window_hi {
            Overlap::Partial
        } else {
            Overlap::Disjoint
        };
    }
    if hi < window_lo || lo > window_hi {
        return Overlap::Disjoint;
    }
    if lo >= window_lo && hi <= window_hi {
        // Every reachable value overlaps (Banerjee "always" direction).
        return Overlap::Partial;
    }
    // GCD refinement: delta ≡ constant (mod g).
    let g = delta.terms().map(|(_, c)| c.unsigned_abs()).fold(0u64, gcd);
    let clipped_lo = lo.max(window_lo);
    let clipped_hi = hi.min(window_hi);
    if !congruence_hits(clipped_lo, clipped_hi, i128::from(delta.constant()), g) {
        return Overlap::Disjoint;
    }
    // Exact integer reachability (sumset DP) for the cases interval+GCD
    // cannot decide, within a fixed budget.
    if let Some(hit) = crate::exact::window_reachable(
        delta,
        bx,
        window_lo,
        window_hi,
        crate::exact::ExactBudget::default(),
    ) {
        if !hit {
            return Overlap::Disjoint;
        }
    }
    Overlap::Unknown
}

/// Exhaustively evaluates `delta` over every integer point of the box and
/// reports the true overlap relation. Only usable for small boxes; the
/// property tests use it as the ground-truth oracle for [`overlap_test`].
///
/// # Panics
///
/// Panics if the box has more than `20_000_000` points.
#[must_use]
pub fn overlap_oracle(delta: &AffineExpr, bx: &IvBox, size_a: u32, size_b: u32) -> Overlap {
    let dims: Vec<usize> = delta.terms().map(|(l, _)| l.index()).collect();
    let ranges: Vec<(i64, i64)> = dims.iter().map(|&d| bx.bound(d)).collect();
    let total: u128 = ranges.iter().map(|&(l, h)| (h - l + 1) as u128).product();
    assert!(total <= 20_000_000, "oracle box too large: {total}");
    let window_lo = -i128::from(size_a) + 1;
    let window_hi = i128::from(size_b) - 1;
    let mut any_overlap = false;
    let mut all_exact = true;
    let mut all_overlap = true;
    let mut point = vec![0usize; ranges.len()];
    loop {
        let mut d = i128::from(delta.constant());
        for ((&(lo, _), &p), (_, c)) in ranges.iter().zip(&point).zip(delta.terms()) {
            d += i128::from(c) * i128::from(lo + p as i64);
        }
        let overlaps = d >= window_lo && d <= window_hi;
        any_overlap |= overlaps;
        all_overlap &= overlaps;
        all_exact &= d == 0 && size_a == size_b;
        // Advance odometer.
        let mut k = 0;
        loop {
            if k == ranges.len() {
                return if !any_overlap {
                    Overlap::Disjoint
                } else if all_exact {
                    Overlap::Exact
                } else if all_overlap {
                    Overlap::Partial
                } else {
                    Overlap::Unknown
                };
            }
            point[k] += 1;
            if ranges[k].0 + point[k] as i64 <= ranges[k].1 {
                break;
            }
            point[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nachos_ir::LoopId;

    fn l(i: usize) -> LoopId {
        LoopId::new(i)
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(7, 0), 7);
        assert_eq!(gcd(1, 999), 1);
    }

    #[test]
    fn constant_deltas() {
        let bx = IvBox::from_bounds(vec![]);
        assert_eq!(
            overlap_test(&AffineExpr::constant_expr(0), &bx, 8, 8),
            Overlap::Exact
        );
        assert_eq!(
            overlap_test(&AffineExpr::constant_expr(8), &bx, 8, 8),
            Overlap::Disjoint
        );
        assert_eq!(
            overlap_test(&AffineExpr::constant_expr(4), &bx, 8, 8),
            Overlap::Partial
        );
        assert_eq!(
            overlap_test(&AffineExpr::constant_expr(-7), &bx, 8, 8),
            Overlap::Partial
        );
        assert_eq!(
            overlap_test(&AffineExpr::constant_expr(-8), &bx, 8, 8),
            Overlap::Disjoint
        );
        assert_eq!(
            overlap_test(&AffineExpr::constant_expr(0), &bx, 4, 8),
            Overlap::Partial,
            "same start, different sizes is partial"
        );
    }

    #[test]
    fn interval_excludes_window() {
        // delta = 8*i + 8, i in [0, 9]: range [8, 80], window [-7, 7].
        let bx = IvBox::from_bounds(vec![(0, 9)]);
        let delta = AffineExpr::var(l(0)).scaled(8).plus(8);
        assert_eq!(overlap_test(&delta, &bx, 8, 8), Overlap::Disjoint);
    }

    #[test]
    fn gcd_excludes_window() {
        // delta = 16*i + 8, i in [-9, 9]: range includes the window
        // [-3, 3] for 4-byte accesses, but all values are ≡ 8 (mod 16),
        // so none fall inside.
        let bx = IvBox::from_bounds(vec![(-9, 9)]);
        let delta = AffineExpr::var(l(0)).scaled(16).plus(8);
        assert_eq!(overlap_test(&delta, &bx, 4, 4), Overlap::Disjoint);
    }

    #[test]
    fn gcd_cannot_exclude_when_residue_hits() {
        // delta = 16*i, window [-3, 3] contains 0 ≡ 0 (mod 16).
        let bx = IvBox::from_bounds(vec![(-2, 2)]);
        let delta = AffineExpr::var(l(0)).scaled(16);
        assert_eq!(overlap_test(&delta, &bx, 4, 4), Overlap::Unknown);
    }

    #[test]
    fn degenerate_box_is_constant() {
        // i pinned to 3: delta = 8*i - 24 = 0.
        let bx = IvBox::from_bounds(vec![(3, 3)]);
        let delta = AffineExpr::var(l(0)).scaled(8).plus(-24);
        assert_eq!(overlap_test(&delta, &bx, 8, 8), Overlap::Exact);
    }

    #[test]
    fn multi_iv_interval() {
        // delta = 64*i - 8*j, i in [1, 4], j in [0, 7]:
        // range [64-56, 256] = [8, 256] — outside window for 8-byte ops.
        let bx = IvBox::from_bounds(vec![(1, 4), (0, 7)]);
        let delta = AffineExpr::from_terms(&[(l(0), 64), (l(1), -8)], 0);
        assert_eq!(overlap_test(&delta, &bx, 8, 8), Overlap::Disjoint);
    }

    #[test]
    fn unreferenced_loops_default_to_zero() {
        let bx = IvBox::from_bounds(vec![]);
        let delta = AffineExpr::var(l(5)).scaled(8).plus(16);
        // loop 5 unknown -> pinned to [0,0] -> delta = 16.
        assert_eq!(overlap_test(&delta, &bx, 8, 8), Overlap::Disjoint);
    }

    #[test]
    fn oracle_agrees_on_examples() {
        let bx = IvBox::from_bounds(vec![(0, 9)]);
        let delta = AffineExpr::var(l(0)).scaled(8).plus(8);
        assert_eq!(overlap_oracle(&delta, &bx, 8, 8), Overlap::Disjoint);

        let delta = AffineExpr::var(l(0)).scaled(8).plus(-36);
        // i in [0,9]: delta in {-36,...,36}; hits window sometimes.
        assert_eq!(overlap_oracle(&delta, &bx, 8, 8), Overlap::Unknown);
    }

    #[test]
    fn from_nest_uses_max_iv() {
        use nachos_ir::{LoopInfo, LoopNest};
        let mut nest = LoopNest::new();
        nest.push(LoopInfo {
            name: "i".into(),
            lower: 2,
            upper: 11,
            step: 3,
        });
        let bx = IvBox::from_nest(&nest);
        assert_eq!(bx.bound(0), (2, 8));
    }

    #[test]
    fn iteration_space_is_identity_for_unit_step_from_zero() {
        use nachos_ir::{LoopInfo, LoopNest};
        let mut nest = LoopNest::new();
        nest.push(LoopInfo::range("i", 0, 10));
        let delta = AffineExpr::var(l(0)).scaled(8).plus(-16);
        let (d2, bx2) = iteration_space(&delta, &nest);
        assert_eq!(d2, delta);
        assert_eq!(bx2, IvBox::from_nest(&nest));
    }

    #[test]
    fn iteration_space_absorbs_lower_and_step() {
        use nachos_ir::{LoopInfo, LoopNest};
        let mut nest = LoopNest::new();
        nest.push(LoopInfo {
            name: "i".into(),
            lower: 2,
            upper: 11,
            step: 3,
        }); // iv ∈ {2, 5, 8}: 3 trips
        let delta = AffineExpr::var(l(0)).scaled(4).plus(1);
        let (d2, bx2) = iteration_space(&delta, &nest);
        // 4·(2 + 3k) + 1 = 12k + 9, k ∈ [0, 2].
        assert_eq!(d2, AffineExpr::var(l(0)).scaled(12).plus(9));
        assert_eq!(bx2.bound(0), (0, 2));
        // Value sets agree: {9, 21, 33}.
        assert_eq!(delta_range(&d2, &bx2), (9, 33));
    }

    #[test]
    fn iteration_space_excludes_between_step_values_dense_box_cannot() {
        use nachos_ir::{LoopInfo, LoopNest};
        // iv ∈ {0, 16, 32, ...}: delta = iv + 8 never hits [-7, 7], but the
        // dense box [0, 144] with gcd(1) = 1 cannot prove it (exact DP can,
        // so compare the interval+gcd layers directly via congruence).
        let mut nest = LoopNest::new();
        nest.push(LoopInfo {
            name: "i".into(),
            lower: 0,
            upper: 145,
            step: 16,
        });
        let delta = AffineExpr::var(l(0)).plus(8);
        let (d2, bx2) = iteration_space(&delta, &nest);
        // k-space: 16k + 8, k ∈ [0, 9] — gcd 16, residue 8: disjoint.
        assert_eq!(d2, AffineExpr::var(l(0)).scaled(16).plus(8));
        assert_eq!(bx2.bound(0), (0, 9));
        assert_eq!(overlap_test(&d2, &bx2, 8, 8), Overlap::Disjoint);
    }

    #[test]
    fn iteration_space_keeps_out_of_nest_terms() {
        use nachos_ir::LoopNest;
        let nest = LoopNest::new();
        let delta = AffineExpr::var(l(5)).scaled(8).plus(16);
        let (d2, bx2) = iteration_space(&delta, &nest);
        assert_eq!(d2, delta);
        assert_eq!(bx2.bound(5), (0, 0));
        assert_eq!(overlap_test(&d2, &bx2, 8, 8), Overlap::Disjoint);
    }

    #[test]
    fn iteration_space_zero_trip_loop_degenerates() {
        use nachos_ir::{LoopInfo, LoopNest};
        let mut nest = LoopNest::new();
        nest.push(LoopInfo {
            name: "i".into(),
            lower: 4,
            upper: 4,
            step: 1,
        });
        let delta = AffineExpr::var(l(0)).scaled(8);
        let (d2, bx2) = iteration_space(&delta, &nest);
        // k pinned to [0, 0]; constant absorbed lower = 32.
        assert_eq!(bx2.bound(0), (0, 0));
        assert_eq!(delta_range(&d2, &bx2), (32, 32));
    }

    #[test]
    fn iteration_space_overflow_falls_back_to_dense() {
        use nachos_ir::{LoopInfo, LoopNest};
        let mut nest = LoopNest::new();
        nest.push(LoopInfo {
            name: "i".into(),
            lower: 0,
            upper: 10,
            step: i64::MAX,
        });
        let delta = AffineExpr::var(l(0)).scaled(8);
        let (d2, bx2) = iteration_space(&delta, &nest);
        assert_eq!(d2, delta);
        assert_eq!(bx2, IvBox::from_nest(&nest));
    }
}
