//! Comparator-site coalescing of congruent MAY edges.
//!
//! Two MAY edges that share an endpoint and whose non-shared endpoints
//! carry *syntactically identical* memory references test the same
//! address predicate every invocation: the two pairs conflict for exactly
//! the same iteration vectors. When a guaranteed path additionally orders
//! the removed pair *through* the kept one, one comparator check subsumes
//! the other:
//!
//! * **Shared destination** (rule A): edges `o → y` and `k → y` with
//!   `mem(o) == mem(k)` and a guaranteed path `o ⇝ k`. If the (common)
//!   address conflicts with `y`, the kept check holds `y` until `k`
//!   completes, and `k` completes after `o` — so `y` is ordered after `o`
//!   exactly when it must be.
//! * **Shared source** (rule B): edges `s → y1` and `s → y2` with
//!   `mem(y1) == mem(y2)` and a guaranteed path `y1 ⇝ y2`. If `s`
//!   conflicts with the (common) destination address, the kept check
//!   holds `y1` until `s` completes, and `y2` starts after `y1`.
//!
//! Under NACHOS-SW, where MAY edges serialize as tokens, both arguments
//! strengthen (the kept edge orders unconditionally). An edge recorded as
//! `kept` by one certificate is never itself removed by a later rewrite,
//! so every certificate's kept edge is present in the final plan.

use super::cert::Certificate;
use super::witness;
use crate::reach::Reachability;
use crate::stage3::MdePlan;
use nachos_ir::{EdgeKind, MemRef, NodeId, Region};

fn mem_of(region: &Region, n: NodeId) -> Option<&MemRef> {
    region.dfg.node(n).kind.mem_ref()
}

/// Groups `edges` by the endpoint selected by `key`, preserving first-seen
/// order for determinism.
fn group_by(
    edges: &[(NodeId, NodeId)],
    key: impl Fn(&(NodeId, NodeId)) -> NodeId,
) -> Vec<(NodeId, Vec<(NodeId, NodeId)>)> {
    let mut groups: Vec<(NodeId, Vec<(NodeId, NodeId)>)> = Vec::new();
    for &e in edges {
        let k = key(&e);
        match groups.iter_mut().find(|(g, _)| *g == k) {
            Some((_, v)) => v.push(e),
            None => groups.push((k, vec![e])),
        }
    }
    groups
}

/// Partitions a group's edges into congruence classes by the [`MemRef`]
/// of the endpoint selected by `key` (first-seen order).
fn congruence_classes(
    region: &Region,
    edges: &[(NodeId, NodeId)],
    key: impl Fn(&(NodeId, NodeId)) -> NodeId,
) -> Vec<Vec<(NodeId, NodeId)>> {
    let mut classes: Vec<(MemRef, Vec<(NodeId, NodeId)>)> = Vec::new();
    for &e in edges {
        let Some(m) = mem_of(region, key(&e)) else {
            continue;
        };
        match classes.iter_mut().find(|(cm, _)| cm == m) {
            Some((_, v)) => v.push(e),
            None => classes.push((m.clone(), vec![e])),
        }
    }
    classes.into_iter().map(|(_, v)| v).collect()
}

fn slot(region: &Region, n: NodeId) -> usize {
    region
        .dfg
        .node(n)
        .mem_slot
        .map_or(usize::MAX, nachos_ir::MemSlot::index)
}

/// Removes one coalesced MAY edge from the DFG and the plan.
fn remove(region: &mut Region, plan: &mut MdePlan, edge: (NodeId, NodeId)) {
    let pos = plan
        .may
        .iter()
        .position(|&e| e == edge)
        .expect("coalescing candidates come from the plan");
    plan.may.remove(pos);
    region
        .dfg
        .remove_edge_between(edge.0, edge.1, EdgeKind::May)
        .expect("planned MAY edge exists in the compiled DFG");
}

/// Coalesces congruent MAY edges (rules A then B), recording one
/// [`Certificate::MayCoalesced`] per deletion. Returns the number of
/// edges removed. Must run after transitive reduction: witness paths are
/// searched over the final guaranteed edge set, which MAY removals never
/// perturb.
pub(super) fn run(region: &mut Region, plan: &mut MdePlan, certs: &mut Vec<Certificate>) -> usize {
    let closure = Reachability::of_dfg(
        &region.dfg,
        &[EdgeKind::Data, EdgeKind::Order, EdgeKind::Forward],
    );
    let mut kept_edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut removed = 0usize;

    // Rule A: shared destination, congruent sources. Keep the youngest
    // source (deepest into the guaranteed chain), coalesce the rest into
    // it.
    for (_, edges) in group_by(&plan.may.clone(), |e| e.1) {
        for class in congruence_classes(region, &edges, |e| e.0) {
            if class.len() < 2 {
                continue;
            }
            let kept = *class
                .iter()
                .max_by_key(|e| slot(region, e.0))
                .expect("class is non-empty");
            for &cand in class.iter().filter(|&&e| e != kept) {
                if !closure.reaches(cand.0, kept.0) {
                    continue;
                }
                let path = witness::find_path(&region.dfg, cand.0, kept.0, None)
                    .expect("closure reachability implies a concrete path");
                remove(region, plan, cand);
                kept_edges.push(kept);
                removed += 1;
                certs.push(Certificate::MayCoalesced {
                    removed: cand,
                    kept,
                    witness: path,
                });
            }
        }
    }

    // Rule B: shared source, congruent destinations. Keep the oldest
    // destination (first to execute), coalesce younger congruent ones.
    for (_, edges) in group_by(&plan.may.clone(), |e| e.0) {
        for class in congruence_classes(region, &edges, |e| e.1) {
            if class.len() < 2 {
                continue;
            }
            let kept = *class
                .iter()
                .min_by_key(|e| slot(region, e.1))
                .expect("class is non-empty");
            for &cand in class.iter().filter(|&&e| e != kept) {
                if kept_edges.contains(&cand) || !closure.reaches(kept.1, cand.1) {
                    continue;
                }
                let path = witness::find_path(&region.dfg, kept.1, cand.1, None)
                    .expect("closure reachability implies a concrete path");
                remove(region, plan, cand);
                kept_edges.push(kept);
                removed += 1;
                certs.push(Certificate::MayCoalesced {
                    removed: cand,
                    kept,
                    witness: path,
                });
            }
        }
    }
    removed
}
