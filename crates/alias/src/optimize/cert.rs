//! Machine-checkable certificates for MDE-optimizer rewrites.
//!
//! Every edge the optimizer deletes and every verdict it upgrades carries
//! a [`Certificate`]: the witness path or arithmetic fact that justifies
//! the rewrite. Certificates are *self-contained enough to re-verify
//! independently* — the audit's `CertLint` pass re-derives each one from
//! the region and the final analysis without trusting any optimizer
//! state, mirroring how the rest of `nachos-lint` re-derives the
//! compiler's alias verdicts.

use nachos_ir::{AffineExpr, NodeId};

/// The arithmetic fact that proves a residual MAY pair disjoint in
/// iteration-count space (see [`crate::afftest::iteration_space`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArithFact {
    /// The delta's value range over the iteration box misses the overlap
    /// window `[-(size_a - 1), size_b - 1]` entirely.
    Range {
        /// Minimum reachable delta value.
        lo: i128,
        /// Maximum reachable delta value.
        hi: i128,
    },
    /// Every reachable delta value is `≡ residue (mod modulus)` and no
    /// such value lies in the overlap window clipped to the value range.
    Congruence {
        /// The GCD of the delta's iteration-count coefficients.
        modulus: u64,
        /// The delta's constant term (the residue class).
        residue: i64,
    },
    /// The exact sumset reachability test proves no reachable delta value
    /// lies in the overlap window.
    Exact,
}

/// One optimizer rewrite with its justification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Certificate {
    /// The ORDER edge `src → dst` was deleted by transitive reduction:
    /// `witness` is a path `src ⇝ dst` over the surviving
    /// Data ∪ Order ∪ Forward edges that still enforces the ordering.
    OrderRedundant {
        /// Older endpoint of the deleted token edge.
        src: NodeId,
        /// Younger endpoint of the deleted token edge.
        dst: NodeId,
        /// Node sequence `src, …, dst` (every hop a guaranteed edge in
        /// the *final* DFG).
        witness: Vec<NodeId>,
    },
    /// The MAY edge `removed` was coalesced into the congruent MAY edge
    /// `kept`: the two edges share an endpoint, the non-shared endpoints
    /// have syntactically identical memory references (so the two pairs
    /// conflict for exactly the same iteration vectors), and `witness` is
    /// a guaranteed path ordering the removed pair through the kept one —
    /// `removed.src ⇝ kept.src` when the destination is shared, or
    /// `kept.dst ⇝ removed.dst` when the source is shared.
    MayCoalesced {
        /// The deleted MAY edge `(older, younger)`.
        removed: (NodeId, NodeId),
        /// The surviving MAY edge that subsumes it.
        kept: (NodeId, NodeId),
        /// Node sequence over guaranteed edges in the final DFG.
        witness: Vec<NodeId>,
    },
    /// Stage 5 upgraded the residual MAY pair `(older, younger)` to NO:
    /// both accesses target the same base object and their linearized
    /// address difference — reparameterized to iteration-count space —
    /// provably misses the overlap window.
    MayUpgraded {
        /// Older operation of the pair.
        older: NodeId,
        /// Younger operation of the pair.
        younger: NodeId,
        /// The k-space delta `offset(older) - offset(younger)` the fact
        /// speaks about (re-derived and cross-checked by `CertLint`).
        delta: AffineExpr,
        /// The deciding arithmetic fact.
        fact: ArithFact,
    },
}

/// Aggregate rewrite counters, reported per run in sweeps and lint suites.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// ORDER/token edges in the plan before optimization.
    pub order_before: usize,
    /// MAY edges in the plan before optimization.
    pub may_before: usize,
    /// ORDER edges deleted by transitive reduction.
    pub order_removed: usize,
    /// MAY edges deleted by comparator-site coalescing.
    pub may_coalesced: usize,
    /// Residual MAY pairs upgraded to NO by stage 5.
    pub may_upgraded: usize,
    /// MAY edges deleted because stage 5 upgraded their pair (a subset of
    /// upgraded pairs carries a planned edge).
    pub may_upgraded_edges: usize,
}

impl OptStats {
    /// Total ordering-mechanism edges deleted (tokens plus comparator
    /// checks; NACHOS-SW serializes MAY edges as tokens, so both count
    /// against the paper's token pressure).
    #[must_use]
    pub fn edges_removed(&self) -> usize {
        self.order_removed + self.may_coalesced + self.may_upgraded_edges
    }

    /// Comparator-site MAY edges coalesced away.
    #[must_use]
    pub fn comparators_coalesced(&self) -> usize {
        self.may_coalesced
    }
}

/// The optimizer's product: every rewrite's certificate plus counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OptOutcome {
    /// One certificate per rewrite, in rewrite order (stage 5 upgrades,
    /// then transitive reduction, then coalescing).
    pub certs: Vec<Certificate>,
    /// Aggregate counters.
    pub stats: OptStats,
}

impl OptOutcome {
    /// The deleted edges as `(src, dst, kind)` triples — the shape
    /// [`nachos_ir::to_dot_with_removed`] renders as grey ghost edges.
    #[must_use]
    pub fn removed_edges(&self) -> Vec<(NodeId, NodeId, nachos_ir::EdgeKind)> {
        use nachos_ir::EdgeKind;
        self.certs
            .iter()
            .map(|c| match c {
                Certificate::OrderRedundant { src, dst, .. } => (*src, *dst, EdgeKind::Order),
                Certificate::MayCoalesced { removed, .. } => (removed.0, removed.1, EdgeKind::May),
                // Upgrades without a planned edge delete nothing; the
                // optimizer only records edge-carrying upgrades here via
                // the matching plan mutation, which `CertLint` checks —
                // the dot rendering treats every upgraded pair's edge as
                // removed (a no-op when none existed).
                Certificate::MayUpgraded { older, younger, .. } => {
                    (*older, *younger, EdgeKind::May)
                }
            })
            .collect()
    }

    /// `true` when some certificate coalesces exactly the MAY pair
    /// `(src, dst)` — the audit's race lint exempts such pairs from the
    /// ordering-chain requirement (the kept congruent edge orders them;
    /// `CertLint` verifies that claim independently).
    #[must_use]
    pub fn coalesced_pair(&self, src: NodeId, dst: NodeId) -> bool {
        self.certs.iter().any(
            |c| matches!(c, Certificate::MayCoalesced { removed, .. } if *removed == (src, dst)),
        )
    }
}
