//! Stage 5 — symbolic congruence/range analysis over iteration counts.
//!
//! Stages 1 and 4 test affine deltas over the *dense* induction-variable
//! box ([`IvBox::from_nest`]), which over-approximates stepped loops: a
//! `step 16` loop contributes every integer between its bounds, so the
//! GCD congruence argument degenerates (gcd includes the raw coefficient,
//! not `coefficient · step`). Stage 5 reparameterizes the delta to
//! iteration-count space ([`iteration_space`]) — an *exact* description
//! of the values the delta takes at runtime — and re-runs the full
//! interval / congruence / exact-reachability chain there, recording the
//! deciding arithmetic fact as a [`Certificate::MayUpgraded`].
//!
//! Upgrades are MAY→NO only. A MAY pair that *always* overlaps would have
//! a constant (or box-constant) delta inside the window, which stage 1
//! already classifies MUST whenever the delta is derivable at all — so
//! there is nothing sound left for stage 5 to upgrade to MUST.

use super::cert::{ArithFact, Certificate};
use crate::afftest::{congruence_hits, delta_range, gcd, iteration_space, IvBox};
use crate::classify::linearize;
use crate::matrix::{AliasLabel, AliasMatrix};
use crate::stage3::MdePlan;
use nachos_ir::{AffineExpr, EdgeKind, NodeId, Region};

/// Decides whether the k-space `delta` provably misses the overlap window
/// for the given access sizes, returning the deciding fact. Mirrors
/// [`crate::afftest::overlap_test`]'s disjointness chain; `None` means
/// the pair stays MAY.
pub(crate) fn disjoint_fact(
    delta: &AffineExpr,
    bx: &IvBox,
    size_a: u32,
    size_b: u32,
) -> Option<ArithFact> {
    let window_lo = -i128::from(size_a) + 1;
    let window_hi = i128::from(size_b) - 1;
    let (lo, hi) = delta_range(delta, bx);
    if hi < window_lo || lo > window_hi {
        return Some(ArithFact::Range { lo, hi });
    }
    if delta.is_constant() || lo == hi {
        // A pinned delta inside the window overlaps: not disjoint.
        return None;
    }
    let g = delta.terms().map(|(_, c)| c.unsigned_abs()).fold(0u64, gcd);
    let clipped_lo = lo.max(window_lo);
    let clipped_hi = hi.min(window_hi);
    if !congruence_hits(clipped_lo, clipped_hi, i128::from(delta.constant()), g) {
        return Some(ArithFact::Congruence {
            modulus: g,
            residue: delta.constant(),
        });
    }
    if crate::exact::window_reachable(
        delta,
        bx,
        window_lo,
        window_hi,
        crate::exact::ExactBudget::default(),
    ) == Some(false)
    {
        return Some(ArithFact::Exact);
    }
    None
}

/// Derives the k-space delta for a same-object pair, or `None` when the
/// pair is outside stage 5's domain (different/unknown bases, or a
/// non-linearizable subscript).
pub(crate) fn kspace_delta(
    region: &Region,
    older: NodeId,
    younger: NodeId,
) -> Option<(AffineExpr, IvBox, u32, u32)> {
    let ma = region.dfg.node(older).kind.mem_ref()?;
    let mb = region.dfg.node(younger).kind.mem_ref()?;
    if ma.ptr.base()? != mb.ptr.base()? {
        return None;
    }
    let delta = linearize(ma)?.sub(&linearize(mb)?);
    let (dk, bx) = iteration_space(&delta, &region.loops);
    Some((dk, bx, u32::from(ma.size), u32::from(mb.size)))
}

/// Upgrades every decidable residual MAY pair to NO, deleting its planned
/// MAY edge (when one exists) and keeping the matrix, the plan and the
/// DFG in lockstep. Returns `(pairs_upgraded, edges_removed)`.
pub(super) fn run(
    region: &mut Region,
    matrix: &mut AliasMatrix,
    plan: &mut MdePlan,
    certs: &mut Vec<Certificate>,
) -> (usize, usize) {
    let mut upgraded = 0usize;
    let mut edges_removed = 0usize;
    let may_pairs: Vec<_> = matrix
        .pairs()
        .filter(|&(_, _, label)| label == AliasLabel::May)
        .map(|(pair, _, _)| pair)
        .collect();
    for pair in may_pairs {
        let (s, d) = (matrix.node(pair.older), matrix.node(pair.younger));
        let Some((delta, bx, size_a, size_b)) = kspace_delta(region, s, d) else {
            continue;
        };
        let Some(fact) = disjoint_fact(&delta, &bx, size_a, size_b) else {
            continue;
        };
        matrix.set(pair, AliasLabel::No);
        if let Some(pos) = plan.may.iter().position(|&e| e == (s, d)) {
            plan.may.remove(pos);
            region
                .dfg
                .remove_edge_between(s, d, EdgeKind::May)
                .expect("planned MAY edge exists in the compiled DFG");
            edges_removed += 1;
        }
        upgraded += 1;
        certs.push(Certificate::MayUpgraded {
            older: s,
            younger: d,
            delta,
            fact,
        });
    }
    (upgraded, edges_removed)
}
