//! Transitive reduction of the planned ORDER/token edge set.
//!
//! An ORDER edge `s → d` is redundant when `d` remains reachable from `s`
//! over the *other* guaranteed edges (Data ∪ Order ∪ Forward): every such
//! hop implies the destination starts only after the source completes, so
//! the surviving path enforces the same ordering the token did. Removing
//! a redundant edge preserves pairwise guaranteed reachability, which is
//! why witness paths can be (re-)searched in the final graph after all
//! removals — later deletions can invalidate a specific path recorded
//! earlier, but never the reachability fact itself.
//!
//! ST→LD ORDER edges are exempt, mirroring stage 3 and the audit's
//! `A-W02` rule: they stand in for superseded forwarders and are
//! committed unconditionally.

use super::cert::Certificate;
use super::witness;
use crate::matrix::{AliasMatrix, PairKind};
use crate::stage3::MdePlan;
use nachos_ir::{EdgeKind, Region};

/// Deletes every provably redundant planned ORDER edge, recording one
/// [`Certificate::OrderRedundant`] per deletion. Returns the number of
/// edges removed.
pub(super) fn run(
    region: &mut Region,
    matrix: &AliasMatrix,
    plan: &mut MdePlan,
    certs: &mut Vec<Certificate>,
) -> usize {
    let mut index_of = vec![None; region.dfg.num_nodes()];
    for (i, &n) in matrix.ops().iter().enumerate() {
        index_of[n.index()] = Some(i);
    }
    let mut removed = Vec::new();
    let mut i = 0;
    while i < plan.order.len() {
        let (s, d) = plan.order[i];
        let is_st_ld = match (index_of[s.index()], index_of[d.index()]) {
            (Some(si), Some(di)) if si < di => {
                matrix.kind(crate::matrix::Pair {
                    older: si,
                    younger: di,
                }) == PairKind::StLd
            }
            _ => false,
        };
        if is_st_ld
            || witness::find_path(&region.dfg, s, d, Some((s, d, EdgeKind::Order))).is_none()
        {
            i += 1;
            continue;
        }
        region
            .dfg
            .remove_edge_between(s, d, EdgeKind::Order)
            .expect("planned ORDER edge exists in the compiled DFG");
        plan.order.remove(i);
        removed.push((s, d));
    }
    // Witnesses are searched in the final graph so every recorded path
    // survives all deletions (reachability is preserved by each removal).
    for (s, d) in removed.iter().copied() {
        let path = witness::find_path(&region.dfg, s, d, None)
            .expect("transitive reduction preserves guaranteed reachability");
        certs.push(Certificate::OrderRedundant {
            src: s,
            dst: d,
            witness: path,
        });
    }
    removed.len()
}
