//! Witness-path search over guaranteed ordering edges.

use nachos_ir::{Dfg, EdgeKind, NodeId};

/// `true` for the edge kinds that enforce ordering transitively: data
/// flow, ORDER tokens and FORWARD values. MAY edges order only their own
/// endpoints (the runtime check may release the younger op early), so
/// witness paths never traverse them — mirroring the audit's closure.
pub(super) fn guaranteed(kind: EdgeKind) -> bool {
    matches!(kind, EdgeKind::Data | EdgeKind::Order | EdgeKind::Forward)
}

/// Shortest path `from ⇝ to` over guaranteed edges, as the full node
/// sequence `[from, …, to]`, or `None` when unreachable. Paths of length
/// zero are not paths: `from == to` returns `None`. `skip` excludes one
/// directed edge from the search (the deletion candidate itself).
pub(super) fn find_path(
    dfg: &Dfg,
    from: NodeId,
    to: NodeId,
    skip: Option<(NodeId, NodeId, EdgeKind)>,
) -> Option<Vec<NodeId>> {
    if from == to {
        return None;
    }
    let mut parent: Vec<Option<NodeId>> = vec![None; dfg.num_nodes()];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    while let Some(n) = queue.pop_front() {
        for e in dfg.out_edges(n) {
            if !guaranteed(e.kind) || skip == Some((e.src, e.dst, e.kind)) {
                continue;
            }
            if e.dst != from && parent[e.dst.index()].is_none() {
                parent[e.dst.index()] = Some(n);
                if e.dst == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while let Some(p) = parent[cur.index()] {
                        path.push(p);
                        if p == from {
                            break;
                        }
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(e.dst);
            }
        }
    }
    None
}

/// `true` when every consecutive hop of `witness` is a guaranteed edge of
/// `dfg` and the endpoints match — the re-verification `CertLint` runs.
pub(crate) fn path_valid(dfg: &Dfg, witness: &[NodeId], from: NodeId, to: NodeId) -> bool {
    if witness.len() < 2 || witness[0] != from || *witness.last().expect("non-empty") != to {
        return false;
    }
    witness.windows(2).all(|hop| {
        hop[0].index() < dfg.num_nodes()
            && dfg
                .out_edges(hop[0])
                .any(|e| e.dst == hop[1] && guaranteed(e.kind))
    })
}
