//! `nachos-opt` — post-pipeline MDE minimization with certificates.
//!
//! The compiler pipeline (stages 1–4 plus planning) decides *which* pairs
//! need ordering; this pass minimizes *how* that ordering is enforced,
//! after the plan has been applied to the DFG:
//!
//! 1. **Stage 5** ([`stage5`]): a symbolic value-range + modular-arithmetic
//!    analysis over iteration counts upgrades residual MAY verdicts to NO
//!    where stages 1–4 lose precision (stepped loops, multi-IV deltas
//!    under ablated configs), deleting the pair's planned MAY edge.
//! 2. **Transitive reduction** ([`reduce`]): ORDER/token edges implied by
//!    the surviving Data ∪ Order ∪ Forward paths are deleted.
//! 3. **Comparator coalescing** ([`coalesce`]): MAY edges whose pairs test
//!    a syntactically congruent address predicate, and which a guaranteed
//!    path orders through a sibling check, are merged into one comparator.
//!
//! Every rewrite emits a [`Certificate`] — the witness path or arithmetic
//! fact justifying it — and the audit's `CertLint` pass re-verifies each
//! certificate *independently* of this module. An unverifiable
//! certificate is a hard `A-E08` error and the driver refuses the region,
//! exactly like any other audit error.
//!
//! The matrix, the plan, the per-stage report and the DFG are mutated in
//! lockstep, so the optimized analysis passes the same accounting and
//! drift lints an unoptimized one does.

mod cert;
mod coalesce;
mod reduce;
mod stage5;
mod witness;

pub use cert::{ArithFact, Certificate, OptOutcome, OptStats};

pub(crate) use stage5::{disjoint_fact, kspace_delta};
pub(crate) use witness::path_valid;

use crate::pipeline::Analysis;
use nachos_ir::Region;

/// Runs the optimizer over a compiled region (the MDE plan must already
/// be applied to the DFG — see [`crate::compile`]). Mutates the region's
/// edges and the analysis in lockstep and records the outcome in
/// `analysis.opt`.
pub fn optimize(region: &mut Region, analysis: &mut Analysis) {
    let mut certs = Vec::new();
    let order_before = analysis.plan.order.len();
    let may_before = analysis.plan.may.len();

    let (may_upgraded, may_upgraded_edges) =
        stage5::run(region, &mut analysis.matrix, &mut analysis.plan, &mut certs);
    let order_removed = reduce::run(region, &analysis.matrix, &mut analysis.plan, &mut certs);
    let may_coalesced = coalesce::run(region, &mut analysis.plan, &mut certs);

    // Lockstep: the report must keep describing the (now smaller) plan
    // and the (possibly relabeled) matrix, or the accounting lint drifts.
    analysis.report.mdes = (
        analysis.plan.order.len(),
        analysis.plan.forward.len(),
        analysis.plan.may.len(),
    );
    analysis.report.final_labels = analysis.matrix.label_counts();

    analysis.opt = Some(OptOutcome {
        certs,
        stats: OptStats {
            order_before,
            may_before,
            order_removed,
            may_coalesced,
            may_upgraded,
            may_upgraded_edges,
        },
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::AliasLabel;
    use crate::pipeline::{compile, StageConfig};
    use nachos_ir::{AffineExpr, EdgeKind, LoopInfo, MemRef, Provenance, Region, RegionBuilder};

    fn compile_opt(region: &mut Region, config: StageConfig) -> Analysis {
        let mut analysis = compile(region, config);
        optimize(region, &mut analysis);
        analysis
    }

    /// Two stores to one unknown-provenance location, with independent
    /// data chains, plus a third store the first two both reach: stage 3
    /// plans ORDER edges st0→st1 and st1→st2 (and prunes st0→st2), so
    /// nothing is redundant — then a hand-added extra token becomes one.
    #[test]
    fn reduction_removes_hand_added_redundant_token() {
        let mut b = RegionBuilder::new("redundant");
        let a0 = b.arg(0, Provenance::Unknown);
        let m = MemRef::affine(a0, AffineExpr::zero());
        b.store(m.clone(), &[]);
        b.store(m.clone(), &[]);
        b.store(m, &[]);
        let mut r = b.finish();
        let mut analysis = compile(&mut r, StageConfig::full());
        // The chain st0→st1→st2 exists; force the pruned st0→st2 back in.
        let (s0, s2) = (r.dfg.mem_ops()[0], r.dfg.mem_ops()[2]);
        if r.dfg.add_edge(s0, s2, EdgeKind::Order).is_ok() {
            analysis.plan.order.push((s0, s2));
            analysis.report.mdes.0 += 1;
        }
        let before = analysis.plan.order.len();
        optimize(&mut r, &mut analysis);
        let opt = analysis.opt.as_ref().expect("optimizer ran");
        assert_eq!(opt.stats.order_removed, 1);
        assert_eq!(analysis.plan.order.len(), before - 1);
        assert!(!analysis.plan.order.contains(&(s0, s2)));
        assert_eq!(
            r.dfg.count_edges(EdgeKind::Order),
            analysis.plan.order.len()
        );
        // The certificate's witness walks the surviving chain.
        let Certificate::OrderRedundant { src, dst, witness } = &opt.certs[0] else {
            panic!("expected an OrderRedundant certificate");
        };
        assert_eq!((*src, *dst), (s0, s2));
        assert!(witness.len() >= 3, "path must route via st1: {witness:?}");
        assert!(path_valid(&r.dfg, witness, s0, s2));
    }

    /// One ambiguous store fanning out MAY edges to two congruent loads
    /// ordered by a data chain: rule B coalesces the younger edge.
    #[test]
    fn coalescing_merges_congruent_destinations() {
        let mut b = RegionBuilder::new("coalesce-b");
        let g = b.global("g", 256, 0);
        let a0 = b.arg(0, Provenance::Unknown);
        b.store(MemRef::affine(a0, AffineExpr::zero()), &[]);
        let m = MemRef::affine(g, AffineExpr::constant_expr(8));
        let ld1 = b.load(m.clone(), &[]);
        let t = b.int_op(nachos_ir::IntOp::Add, &[ld1]);
        b.store(m, &[t]);
        let mut r = b.finish();
        let analysis = compile_opt(&mut r, StageConfig::full());
        let opt = analysis.opt.as_ref().expect("optimizer ran");
        assert_eq!(opt.stats.may_coalesced, 1, "certs: {:?}", opt.certs);
        assert_eq!(analysis.plan.may.len(), 1);
        assert_eq!(r.dfg.count_edges(EdgeKind::May), 1);
        let Certificate::MayCoalesced {
            removed,
            kept,
            witness,
        } = &opt.certs[0]
        else {
            panic!("expected a MayCoalesced certificate");
        };
        // Shared source (the ambiguous store), kept edge targets the load.
        assert_eq!(removed.0, kept.0);
        assert!(path_valid(&r.dfg, witness, kept.1, removed.1));
        // Report stays in lockstep.
        assert_eq!(analysis.report.mdes.2, analysis.plan.may.len());
    }

    /// Two congruent ambiguous stores (same unknown MemRef) both MAY-feed
    /// a younger load: rule A coalesces into the youngest source.
    #[test]
    fn coalescing_merges_congruent_sources() {
        let mut b = RegionBuilder::new("coalesce-a");
        let g = b.global("g", 256, 0);
        let a0 = b.arg(0, Provenance::Unknown);
        let m = MemRef::affine(a0, AffineExpr::zero());
        b.store(m.clone(), &[]);
        b.store(m, &[]);
        b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
        let mut r = b.finish();
        let analysis = compile_opt(&mut r, StageConfig::full());
        let opt = analysis.opt.as_ref().expect("optimizer ran");
        // st0 and st1 are MustExact (same ref) → ORDER edge st0→st1; the
        // load MAY-depends on both stores; rule A keeps st1→ld only.
        assert_eq!(opt.stats.may_coalesced, 1, "certs: {:?}", opt.certs);
        let Certificate::MayCoalesced {
            removed,
            kept,
            witness,
        } = opt
            .certs
            .iter()
            .find(|c| matches!(c, Certificate::MayCoalesced { .. }))
            .expect("one coalescing certificate")
        else {
            unreachable!()
        };
        assert_eq!(removed.1, kept.1, "shared destination");
        assert!(path_valid(&r.dfg, witness, removed.0, kept.0));
    }

    /// A stepped loop stages 1–4 cannot see through: iv ∈ {0, 16, …} and
    /// delta = iv + 8 never hits the 8-byte window, but the dense box
    /// admits every intermediate value. Stage 5's k-space congruence
    /// decides it.
    #[test]
    fn stage5_upgrades_stepped_loop_pair() {
        let mut b = RegionBuilder::new("stepped");
        let iv = b.enclosing_loop(LoopInfo {
            name: "i".into(),
            lower: 0,
            upper: 4097,
            step: 16,
        });
        let g = b.global("g", 8192, 0);
        b.store(MemRef::affine(g, AffineExpr::var(iv)), &[]);
        b.load(MemRef::affine(g, AffineExpr::constant_expr(8)), &[]);
        let mut r = b.finish();
        let analysis = compile_opt(&mut r, StageConfig::full());
        let opt = analysis.opt.as_ref().expect("optimizer ran");
        assert_eq!(opt.stats.may_upgraded, 1, "certs: {:?}", opt.certs);
        assert_eq!(analysis.matrix.label_counts().may, 0);
        assert_eq!(r.dfg.count_edges(EdgeKind::May), 0);
        let Certificate::MayUpgraded { fact, .. } = &opt.certs[0] else {
            panic!("expected a MayUpgraded certificate");
        };
        assert_eq!(
            *fact,
            ArithFact::Congruence {
                modulus: 16,
                residue: -8
            }
        );
        // Lockstep: labels and MDE counts describe the upgraded state.
        assert_eq!(analysis.report.final_labels, analysis.matrix.label_counts());
        assert_eq!(analysis.report.mdes.2, analysis.plan.may.len());
    }

    /// Pairs the optimizer cannot prove stay put: nothing is removed from
    /// a genuinely ambiguous region.
    #[test]
    fn ambiguous_pairs_are_untouched() {
        let mut b = RegionBuilder::new("ambiguous");
        let a0 = b.arg(0, Provenance::Unknown);
        let a1 = b.arg(1, Provenance::Unknown);
        b.store(MemRef::affine(a0, AffineExpr::zero()), &[]);
        b.load(MemRef::affine(a1, AffineExpr::zero()), &[]);
        let mut r = b.finish();
        let analysis = compile_opt(&mut r, StageConfig::full());
        let opt = analysis.opt.as_ref().expect("optimizer ran");
        assert_eq!(opt.stats.edges_removed(), 0);
        assert_eq!(opt.stats.may_upgraded, 0);
        assert!(opt.certs.is_empty());
        assert_eq!(
            analysis.matrix.get(crate::matrix::Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::May)
        );
    }

    /// The optimized region still passes the full audit (including the
    /// certificate lint) under every stage configuration.
    #[test]
    fn optimized_regions_audit_clean() {
        for config in [
            StageConfig::full(),
            StageConfig::baseline(),
            StageConfig::stage1_only(),
        ] {
            let mut b = RegionBuilder::new("audit-clean");
            let iv = b.enclosing_loop(LoopInfo::range("i", 0, 8));
            let g = b.global("g", 1024, 0);
            let a0 = b.arg(0, Provenance::Unknown);
            b.store(MemRef::affine(a0, AffineExpr::zero()), &[]);
            let m = MemRef::affine(g, AffineExpr::var(iv).scaled(8));
            let ld = b.load(m.clone(), &[]);
            let t = b.int_op(nachos_ir::IntOp::Add, &[ld]);
            b.store(m, &[t]);
            b.load(
                MemRef::affine(g, AffineExpr::var(iv).scaled(8).plus(4096)),
                &[],
            );
            let mut r = b.finish();
            let mut analysis = compile(&mut r, config);
            optimize(&mut r, &mut analysis);
            let diags = crate::audit::audit_with(
                &r,
                &analysis,
                config,
                &crate::audit::AuditConfig::default(),
            );
            let errors: Vec<_> = diags.iter().filter(|d| d.is_error()).collect();
            assert!(errors.is_empty(), "{config:?}: {errors:?}");
        }
    }
}
