//! Shared classification helpers used by several analysis stages.

use crate::afftest::{overlap_test, IvBox, Overlap};
use crate::matrix::AliasLabel;
use nachos_ir::{AffineExpr, MemRef, PtrExpr};

/// Linearizes a pointer expression into a single affine byte offset from
/// its base, when every stride is a compile-time constant. Returns `None`
/// for unknown-provenance pointers and symbolic-stride multidimensional
/// accesses.
#[must_use]
pub fn linearize(mem: &MemRef) -> Option<AffineExpr> {
    match &mem.ptr {
        PtrExpr::Affine { offset, .. } => Some(offset.clone()),
        PtrExpr::MultiDim { subs, .. } => {
            let mut total = AffineExpr::zero();
            for sub in subs {
                if sub.stride.is_symbolic() {
                    return None;
                }
                total = total.add(&sub.index.clone().scaled(sub.stride.scale));
            }
            Some(total)
        }
        PtrExpr::Unknown { .. } => None,
    }
}

/// Maps an [`Overlap`] verdict to an [`AliasLabel`].
#[must_use]
pub fn overlap_to_label(o: Overlap) -> AliasLabel {
    match o {
        Overlap::Disjoint => AliasLabel::No,
        Overlap::Exact => AliasLabel::MustExact,
        Overlap::Partial => AliasLabel::MustPartial,
        Overlap::Unknown => AliasLabel::May,
    }
}

/// Classifies two accesses known to target the **same object**, comparing
/// their linearized offsets.
///
/// `allow_multi_iv` selects the analysis power: Stage 1 (SCEV-style)
/// decides only constant and single-induction-variable differences and
/// reports MAY otherwise; Stage 4 (polyhedral-style) also decides
/// multi-variable differences using the iteration box.
#[must_use]
pub fn classify_same_object(
    mem_a: &MemRef,
    mem_b: &MemRef,
    bx: &IvBox,
    allow_multi_iv: bool,
) -> AliasLabel {
    let (Some(off_a), Some(off_b)) = (linearize(mem_a), linearize(mem_b)) else {
        return AliasLabel::May;
    };
    let delta = off_a.sub(&off_b);
    if !allow_multi_iv && delta.num_ivs() > 1 {
        return AliasLabel::May;
    }
    overlap_to_label(overlap_test(
        &delta,
        bx,
        u32::from(mem_a.size),
        u32::from(mem_b.size),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nachos_ir::{BaseId, LoopId, ParamId, ScaledParam, Subscript, UnknownId};

    fn l(i: usize) -> LoopId {
        LoopId::new(i)
    }

    #[test]
    fn linearize_affine_passthrough() {
        let m = MemRef::affine(BaseId::new(0), AffineExpr::var(l(0)).scaled(8).plus(4));
        assert_eq!(linearize(&m), Some(AffineExpr::var(l(0)).scaled(8).plus(4)));
    }

    #[test]
    fn linearize_constant_stride_multidim() {
        // A[i][j] with 10 columns of 8-byte elements.
        let m = MemRef::multi_dim(
            BaseId::new(0),
            vec![
                Subscript {
                    index: AffineExpr::var(l(0)),
                    stride: ScaledParam::constant(80),
                    extent: None,
                },
                Subscript {
                    index: AffineExpr::var(l(1)),
                    stride: ScaledParam::constant(8),
                    extent: Some(ScaledParam::constant(10)),
                },
            ],
        );
        let lin = linearize(&m).unwrap();
        assert_eq!(lin.coeff(l(0)), 80);
        assert_eq!(lin.coeff(l(1)), 8);
    }

    #[test]
    fn linearize_rejects_symbolic_and_unknown() {
        let m = MemRef::multi_dim(
            BaseId::new(0),
            vec![Subscript {
                index: AffineExpr::var(l(0)),
                stride: ScaledParam::symbolic(8, ParamId::new(0)),
                extent: None,
            }],
        );
        assert_eq!(linearize(&m), None);
        assert_eq!(linearize(&MemRef::unknown(UnknownId::new(0), 0)), None);
    }

    #[test]
    fn same_object_constant_delta() {
        let bx = IvBox::from_bounds(vec![]);
        let a = MemRef::affine(BaseId::new(0), AffineExpr::constant_expr(0));
        let b = MemRef::affine(BaseId::new(0), AffineExpr::constant_expr(8));
        assert_eq!(classify_same_object(&a, &b, &bx, false), AliasLabel::No);
        assert_eq!(
            classify_same_object(&a, &a, &bx, false),
            AliasLabel::MustExact
        );
    }

    #[test]
    fn multi_iv_gated_by_power() {
        let bx = IvBox::from_bounds(vec![(1, 4), (0, 7)]);
        // a = 64*i, b = 8*j: delta = 64*i - 8*j in [8, 256] — disjoint, but
        // only the multi-IV-capable stage may conclude that.
        let a = MemRef::affine(BaseId::new(0), AffineExpr::var(l(0)).scaled(64));
        let b = MemRef::affine(BaseId::new(0), AffineExpr::var(l(1)).scaled(8));
        assert_eq!(classify_same_object(&a, &b, &bx, false), AliasLabel::May);
        assert_eq!(classify_same_object(&a, &b, &bx, true), AliasLabel::No);
    }
}
