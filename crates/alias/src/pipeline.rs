//! The NACHOS-SW compiler pipeline: stages 1–4 plus MDE planning.

use crate::matrix::{AliasMatrix, LabelCounts};
use crate::stage3::MdePlan;
use crate::{stage1, stage2, stage3, stage4};
use nachos_ir::Region;

/// Which refinement stages to run. Stage 1 always runs; the paper's
/// *baseline compiler* is Stage 1 + Stage 3 (Figures 12 and 16), and full
/// NACHOS-SW enables all four.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageConfig {
    /// Stage 2: inter-procedural provenance (MAY→NO).
    pub stage2: bool,
    /// Stage 3: redundancy pruning of MDEs.
    pub stage3: bool,
    /// Stage 4: polyhedral dependence testing (MAY→NO).
    pub stage4: bool,
}

impl StageConfig {
    /// All four stages — full NACHOS-SW.
    #[must_use]
    pub fn full() -> Self {
        Self {
            stage2: true,
            stage3: true,
            stage4: true,
        }
    }

    /// Stage 1 + Stage 3 only — the paper's baseline compiler.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            stage2: false,
            stage3: true,
            stage4: false,
        }
    }

    /// Stage 1 only, no pruning — for ablation studies.
    #[must_use]
    pub fn stage1_only() -> Self {
        Self {
            stage2: false,
            stage3: false,
            stage4: false,
        }
    }
}

impl Default for StageConfig {
    fn default() -> Self {
        Self::full()
    }
}

/// Per-stage label statistics collected while analyzing a region.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AnalysisReport {
    /// Region name.
    pub region: String,
    /// Number of disambiguation-relevant memory operations.
    pub num_mem_ops: usize,
    /// Number of tracked (non-LD-LD) pairs.
    pub num_pairs: usize,
    /// Labels after Stage 1.
    pub after_stage1: LabelCounts,
    /// MAY pairs refined by Stage 2 (0 when disabled).
    pub stage2_refined: usize,
    /// Labels after Stage 2.
    pub after_stage2: LabelCounts,
    /// MAY pairs refined by Stage 4 (0 when disabled).
    pub stage4_refined: usize,
    /// Final labels after all refinement stages.
    pub final_labels: LabelCounts,
    /// Relations dropped as redundant by Stage 3 (0 when disabled).
    pub pruned: usize,
    /// Enforced MDE counts: (order, forward, may).
    pub mdes: (usize, usize, usize),
}

impl AnalysisReport {
    /// Total enforced MDEs.
    #[must_use]
    pub fn num_mdes(&self) -> usize {
        self.mdes.0 + self.mdes.1 + self.mdes.2
    }

    /// Enforced MAY edges.
    #[must_use]
    pub fn num_may_mdes(&self) -> usize {
        self.mdes.2
    }

    /// `true` if the compiler fully resolved every dependence (no MAY
    /// edges survive) — the "no energy overhead" class of Figure 17.
    #[must_use]
    pub fn fully_resolved(&self) -> bool {
        self.mdes.2 == 0
    }
}

/// The product of analyzing a region: the labeled matrix, the MDE plan and
/// the per-stage report.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Final pairwise labels.
    pub matrix: AliasMatrix,
    /// The MDEs to enforce.
    pub plan: MdePlan,
    /// Per-stage statistics.
    pub report: AnalysisReport,
    /// Certificates and counters from the post-pipeline MDE optimizer
    /// (`None` until [`crate::optimize`] has run on this analysis).
    pub opt: Option<crate::optimize::OptOutcome>,
}

/// Runs the configured stages over a region without mutating it.
#[must_use]
pub fn analyze(region: &Region, config: StageConfig) -> Analysis {
    let mut matrix = AliasMatrix::new(region);
    let mut report = AnalysisReport {
        region: region.name.clone(),
        num_mem_ops: matrix.num_ops(),
        num_pairs: matrix.num_tracked_pairs(),
        ..AnalysisReport::default()
    };

    stage1::run(region, &mut matrix);
    report.after_stage1 = matrix.label_counts();

    if config.stage2 {
        report.stage2_refined = stage2::run(region, &mut matrix);
    }
    report.after_stage2 = matrix.label_counts();

    if config.stage4 {
        report.stage4_refined = stage4::run(region, &mut matrix);
    }
    report.final_labels = matrix.label_counts();

    let plan = stage3::plan_mdes(region, &matrix, config.stage3);
    report.pruned = plan.num_pruned();
    report.mdes = (plan.order.len(), plan.forward.len(), plan.may.len());

    Analysis {
        matrix,
        plan,
        report,
        opt: None,
    }
}

/// Analyzes a region and inserts the planned MDEs into its DFG, together
/// with the (energy-free) dependence edges for scratchpad data
/// ([`crate::wire_local_deps`]). Any MDEs from a previous compilation are
/// removed first, so re-compiling with a different [`StageConfig`] is
/// safe.
pub fn compile(region: &mut Region, config: StageConfig) -> Analysis {
    region.dfg.clear_mdes();
    let analysis = analyze(region, config);
    analysis.plan.apply(region);
    crate::local::wire_local_deps(region);
    analysis
}

/// Distribution of MAY-alias fan-in: for each disambiguation-relevant
/// memory operation, how many *older* operations it MAY-depends on in the
/// final plan (Figure 14). Index `i` of the returned vector is the fan-in
/// of the matrix's `i`-th operation.
#[must_use]
pub fn may_fanin(analysis: &Analysis) -> Vec<usize> {
    let mut fanin = vec![0usize; analysis.matrix.num_ops()];
    let index_of = |node| {
        analysis
            .matrix
            .ops()
            .iter()
            .position(|&n| n == node)
            .expect("plan nodes come from the matrix")
    };
    for &(_, younger) in &analysis.plan.may {
        fanin[index_of(younger)] += 1;
    }
    fanin
}

#[cfg(test)]
mod tests {
    use super::*;
    use nachos_ir::{AffineExpr, EdgeKind, MemRef, Provenance, RegionBuilder};

    fn mixed_region() -> Region {
        let mut b = RegionBuilder::new("mixed");
        let g = b.global("g", 256, 0);
        let a0 = b.arg(0, Provenance::Object(10));
        let a1 = b.arg(1, Provenance::Object(11));
        let m = |o: i64| MemRef::affine(g, AffineExpr::constant_expr(o));
        b.store(m(0), &[]);
        b.load(m(0), &[]);
        b.store(MemRef::affine(a0, AffineExpr::zero()), &[]);
        b.load(MemRef::affine(a1, AffineExpr::zero()), &[]);
        b.finish()
    }

    #[test]
    fn full_pipeline_resolves_provenance() {
        let r = mixed_region();
        let full = analyze(&r, StageConfig::full());
        assert!(full.report.stage2_refined > 0);
        // arg-vs-arg resolved; only the true st/ld dependency survives.
        assert_eq!(full.report.final_labels.may, 0);
        assert!(full.report.fully_resolved());

        let base = analyze(&r, StageConfig::baseline());
        assert_eq!(base.report.stage2_refined, 0);
        assert!(base.report.final_labels.may > 0);
        assert!(!base.report.fully_resolved());
    }

    #[test]
    fn compile_inserts_and_reinserts_edges() {
        let mut r = mixed_region();
        let a1 = compile(&mut r, StageConfig::baseline());
        let mdes_baseline = r.dfg.count_edges(EdgeKind::May)
            + r.dfg.count_edges(EdgeKind::Order)
            + r.dfg.count_edges(EdgeKind::Forward);
        assert_eq!(mdes_baseline, a1.report.num_mdes());
        assert!(r.dfg.count_edges(EdgeKind::May) > 0);

        // Re-compile with the full pipeline: MAY edges disappear.
        let a2 = compile(&mut r, StageConfig::full());
        assert_eq!(r.dfg.count_edges(EdgeKind::May), 0);
        assert_eq!(r.dfg.count_edges(EdgeKind::Forward), a2.plan.forward.len());
    }

    #[test]
    fn report_counts_are_consistent() {
        let r = mixed_region();
        let a = analyze(&r, StageConfig::full());
        let c = a.report.final_labels;
        assert_eq!(c.total(), a.report.num_pairs);
        assert_eq!(
            a.report.num_mdes() + a.report.pruned,
            // Every non-NO relation is either enforced or pruned... except
            // superseded exact ST→LD forwarders, which add an extra order
            // edge. Allow >=.
            a.plan.num_mdes() + a.plan.num_pruned()
        );
    }

    #[test]
    fn fanin_counts_may_parents() {
        let mut b = RegionBuilder::new("fanin");
        let a0 = b.arg(0, Provenance::Unknown);
        let a1 = b.arg(1, Provenance::Unknown);
        let a2 = b.arg(2, Provenance::Unknown);
        b.store(MemRef::affine(a0, AffineExpr::zero()), &[]);
        b.store(MemRef::affine(a1, AffineExpr::zero()), &[]);
        b.load(MemRef::affine(a2, AffineExpr::zero()), &[]);
        let r = b.finish();
        let a = analyze(&r, StageConfig::full());
        let fanin = may_fanin(&a);
        assert_eq!(fanin, vec![0, 1, 2]);
    }

    #[test]
    fn stage1_only_keeps_all_relations() {
        let r = mixed_region();
        let a = analyze(&r, StageConfig::stage1_only());
        assert_eq!(a.report.pruned, 0);
        assert_eq!(a.plan.num_pruned(), 0);
    }
}
