//! Stage 2 — inter-procedural provenance refinement (MAY → NO).
//!
//! Standard LLVM 3.8 alias analyses cannot reason across function
//! boundaries, so pointers that arrive as region arguments stay MAY in
//! Stage 1 even when the caller passes distinct objects. The paper's
//! workloads invoke each accelerated path from a single call site with no
//! function-pointer indirection, so a limited context-sensitive analysis
//! can trace each argument's data dependence back to a source object in
//! the caller. Two operations whose pointers trace to *different* caller
//! objects are refined to NO; pointers tracing to the *same* caller object
//! become same-object queries and re-run the Stage-1 offset analysis.
//!
//! Convention: `Heap` base objects denote allocations that are fresh
//! within the offloaded path, so they are distinct from any caller object.

use crate::afftest::IvBox;
use crate::classify::classify_same_object;
use crate::matrix::{AliasLabel, AliasMatrix};
use nachos_ir::{BaseKind, MemRef, Provenance, Region};

/// The identity of the object a pointer refers to, after provenance
/// tracing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EffObj {
    /// An object in the caller's namespace (globals, traced arguments).
    Caller(u32),
    /// A region-local object (stack slot or fresh heap allocation),
    /// identified by its base id.
    Local(nachos_ir::BaseId),
    /// Untraceable.
    Opaque,
}

fn effective_object(region: &Region, mem: &MemRef) -> EffObj {
    let Some(base) = mem.ptr.base() else {
        return EffObj::Opaque;
    };
    let obj = region.base(base);
    match &obj.kind {
        BaseKind::Global { .. } => match obj.caller_object {
            Some(c) => EffObj::Caller(c),
            None => EffObj::Local(base),
        },
        BaseKind::Stack { .. } | BaseKind::Heap { .. } => EffObj::Local(base),
        BaseKind::Arg { index } => match region.context.provenance(*index) {
            Provenance::Object(c) => EffObj::Caller(c),
            Provenance::Unknown => EffObj::Opaque,
        },
    }
}

/// Attempts to refine one MAY pair using caller provenance. Returns the new
/// label, or `None` when Stage 2 has nothing to say.
#[must_use]
pub fn refine_pair(region: &Region, bx: &IvBox, a: &MemRef, b: &MemRef) -> Option<AliasLabel> {
    let (ea, eb) = (effective_object(region, a), effective_object(region, b));
    match (ea, eb) {
        (EffObj::Opaque, _) | (_, EffObj::Opaque) => None,
        (EffObj::Caller(ca), EffObj::Caller(cb)) => {
            if ca == cb {
                // Same caller object: compare offsets. Arguments are
                // assumed to point at the object base (offset folded into
                // the access expression), matching how NEEDLE outlines
                // regions.
                Some(classify_same_object(a, b, bx, false))
            } else {
                Some(AliasLabel::No)
            }
        }
        // Region-local objects are distinct from caller objects, and two
        // distinct locals were already separated by Stage 1; if both trace
        // locally the pair would not have stayed MAY, so the remaining
        // informative case is local-vs-caller.
        (EffObj::Local(_), EffObj::Caller(_)) | (EffObj::Caller(_), EffObj::Local(_)) => {
            Some(AliasLabel::No)
        }
        (EffObj::Local(_), EffObj::Local(_)) => None,
    }
}

/// Runs Stage 2 over every MAY pair, returning how many labels changed.
pub fn run(region: &Region, matrix: &mut AliasMatrix) -> usize {
    let bx = IvBox::from_nest(&region.loops);
    let may_pairs: Vec<_> = matrix
        .pairs()
        .filter(|&(_, _, l)| l.is_may())
        .map(|(p, _, _)| p)
        .collect();
    let mut changed = 0;
    for pair in may_pairs {
        let a = region
            .dfg
            .node(matrix.node(pair.older))
            .kind
            .mem_ref()
            .expect("matrix tracks memory ops")
            .clone();
        let b = region
            .dfg
            .node(matrix.node(pair.younger))
            .kind
            .mem_ref()
            .expect("matrix tracks memory ops")
            .clone();
        if let Some(label) = refine_pair(region, &bx, &a, &b) {
            if label != AliasLabel::May {
                matrix.set(pair, label);
                changed += 1;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Pair;
    use crate::stage1;
    use nachos_ir::{AffineExpr, RegionBuilder};

    #[test]
    fn distinct_caller_objects_become_no() {
        let mut b = RegionBuilder::new("parser-like");
        // Two pointer arguments that the caller derives from different
        // tables — e.g. parser's local pointer vs a global
        // `Table_connector **table`.
        let a0 = b.arg(0, Provenance::Object(10));
        let a1 = b.arg(1, Provenance::Object(11));
        b.store(MemRef::affine(a0, AffineExpr::zero()), &[]);
        b.load(MemRef::affine(a1, AffineExpr::zero()), &[]);
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        stage1::run(&r, &mut m);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::May)
        );
        let changed = run(&r, &mut m);
        assert_eq!(changed, 1);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::No)
        );
    }

    #[test]
    fn same_caller_object_reruns_offset_analysis() {
        let mut b = RegionBuilder::new("t");
        let a0 = b.arg(0, Provenance::Object(10));
        let a1 = b.arg(1, Provenance::Object(10));
        b.store(MemRef::affine(a0, AffineExpr::zero()), &[]);
        b.load(MemRef::affine(a1, AffineExpr::zero()), &[]);
        b.load(MemRef::affine(a1, AffineExpr::constant_expr(64)), &[]);
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        stage1::run(&r, &mut m);
        run(&r, &mut m);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::MustExact)
        );
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 2
            }),
            Some(AliasLabel::No)
        );
    }

    #[test]
    fn arg_vs_global_with_distinct_identity() {
        let mut b = RegionBuilder::new("t");
        let a0 = b.arg(0, Provenance::Object(10));
        let g = b.global("g", 64, 3);
        b.store(MemRef::affine(a0, AffineExpr::zero()), &[]);
        b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        stage1::run(&r, &mut m);
        run(&r, &mut m);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::No)
        );
    }

    #[test]
    fn arg_vs_global_same_identity_is_must() {
        let mut b = RegionBuilder::new("t");
        let a0 = b.arg(0, Provenance::Object(3));
        let g = b.global("g", 64, 3);
        b.store(MemRef::affine(a0, AffineExpr::zero()), &[]);
        b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        stage1::run(&r, &mut m);
        run(&r, &mut m);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::MustExact)
        );
    }

    #[test]
    fn untraceable_args_stay_may() {
        let mut b = RegionBuilder::new("t");
        let a0 = b.arg(0, Provenance::Unknown);
        let a1 = b.arg(1, Provenance::Object(1));
        b.store(MemRef::affine(a0, AffineExpr::zero()), &[]);
        b.load(MemRef::affine(a1, AffineExpr::zero()), &[]);
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        stage1::run(&r, &mut m);
        let changed = run(&r, &mut m);
        assert_eq!(changed, 0);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::May)
        );
    }

    #[test]
    fn fresh_heap_vs_caller_object_is_no() {
        let mut b = RegionBuilder::new("t");
        let a0 = b.arg(0, Provenance::Object(2));
        let h = b.heap(0, Some(256));
        b.store(MemRef::affine(h, AffineExpr::zero()), &[]);
        b.load(MemRef::affine(a0, AffineExpr::zero()), &[]);
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        stage1::run(&r, &mut m);
        run(&r, &mut m);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::No)
        );
    }

    #[test]
    fn unknown_ptr_pairs_not_touched() {
        let mut b = RegionBuilder::new("t");
        let u0 = b.unknown_ptr();
        let u1 = b.unknown_ptr();
        b.store(MemRef::unknown(u0, 0), &[]);
        b.load(MemRef::unknown(u1, 0), &[]);
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        stage1::run(&r, &mut m);
        assert_eq!(run(&r, &mut m), 0);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::May)
        );
    }
}
