//! Stage 4 — polyhedral dependence testing (MAY → NO) for
//! multidimensional array accesses.
//!
//! Five of the paper's workloads (equake, lbm, namd, bodytrack, dwt53)
//! index multidimensional arrays inside stencil loops — e.g.
//! `w[col][0] += A[Anext][0][0]*v[i][0] + …` — which defeats SCEV-style
//! reasoning because the linearized offset multiplies induction variables
//! by *symbolic* array extents. Polly answers the question with the
//! polyhedral model; this module implements the equivalent decision
//! procedure for our box-shaped iteration domains:
//!
//! * For two in-bounds accesses to the same array with identical dimension
//!   structure, the accesses overlap **iff every dimension's subscripts
//!   coincide** (row-major layouts give a bijection between index vectors
//!   and addresses). Each dimension's subscript difference is an affine
//!   expression tested exactly with the interval+GCD machinery of
//!   [`crate::afftest`].
//! * For accesses whose strides are compile-time constants, the linearized
//!   difference is tested directly, now allowing multiple induction
//!   variables (which Stage 1 declines).

use crate::afftest::{overlap_test, IvBox, Overlap};
use crate::classify::classify_same_object;
use crate::matrix::{AliasLabel, AliasMatrix};
use nachos_ir::{MemRef, PtrExpr, Region, ScaledParam, Subscript};

/// Smallest magnitude a (possibly symbolic) factor can take, given the
/// region's parameter bounds. `None` when the sign is not provably fixed.
fn min_magnitude(factor: ScaledParam, region: &Region) -> Option<i64> {
    match factor.param {
        None => Some(factor.scale.abs()),
        Some(p) => {
            let info = region.params.get(p.index())?;
            if info.min >= 1 {
                Some(factor.scale.abs().checked_mul(info.min)?)
            } else {
                None
            }
        }
    }
}

/// Checks the structural preconditions for the per-dimension test: both
/// accesses are in-bounds views of the same array shape.
fn shapes_compatible(region: &Region, a: &[Subscript], b: &[Subscript]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).enumerate().all(|(d, (sa, sb))| {
            sa.stride == sb.stride
                && sa.extent == sb.extent
                // Inner dimensions need a declared extent for the
                // index-vector/address bijection; the outermost does not.
                && (d == 0 || sa.extent.is_some())
                && min_magnitude(sa.stride, region).is_some()
        })
}

/// Per-dimension subscript test. Returns the refined label, or `None` when
/// the preconditions do not hold.
fn multidim_test(
    region: &Region,
    bx: &IvBox,
    mem_a: &MemRef,
    mem_b: &MemRef,
) -> Option<AliasLabel> {
    let (
        PtrExpr::MultiDim {
            base: base_a,
            subs: subs_a,
            in_bounds: ib_a,
        },
        PtrExpr::MultiDim {
            base: base_b,
            subs: subs_b,
            in_bounds: ib_b,
        },
    ) = (&mem_a.ptr, &mem_b.ptr)
    else {
        return None;
    };
    if base_a != base_b || !ib_a || !ib_b || !shapes_compatible(region, subs_a, subs_b) {
        return None;
    }
    // Access widths must not straddle innermost elements, or the
    // index-vector bijection breaks down.
    let inner = subs_a.last().expect("validated non-empty");
    let inner_min = min_magnitude(inner.stride, region)?;
    if i64::from(mem_a.size) > inner_min || i64::from(mem_b.size) > inner_min {
        return None;
    }
    let mut all_exact = true;
    for (sa, sb) in subs_a.iter().zip(subs_b) {
        let delta = sa.index.sub(&sb.index);
        match overlap_test(&delta, bx, 1, 1) {
            Overlap::Disjoint => return Some(AliasLabel::No),
            Overlap::Exact => {}
            Overlap::Partial | Overlap::Unknown => all_exact = false,
        }
    }
    if all_exact {
        // Every dimension provably coincides: the accesses start at the
        // same element.
        Some(if mem_a.size == mem_b.size {
            AliasLabel::MustExact
        } else {
            AliasLabel::MustPartial
        })
    } else {
        Some(AliasLabel::May)
    }
}

/// Attempts to refine one MAY pair with the polyhedral-strength tests.
/// Returns the refined label, or `None` when Stage 4 does not apply.
#[must_use]
pub fn refine_pair(
    region: &Region,
    bx: &IvBox,
    mem_a: &MemRef,
    mem_b: &MemRef,
) -> Option<AliasLabel> {
    if let Some(label) = multidim_test(region, bx, mem_a, mem_b) {
        return Some(label);
    }
    // Same identified base with constant strides: allow the full
    // multi-variable interval+GCD test on the linearized difference.
    let (Some(ba), Some(bb)) = (mem_a.ptr.base(), mem_b.ptr.base()) else {
        return None;
    };
    if ba != bb {
        return None;
    }
    match classify_same_object(mem_a, mem_b, bx, true) {
        AliasLabel::May => None,
        decided => Some(decided),
    }
}

/// Runs Stage 4 over every MAY pair, returning how many labels changed.
pub fn run(region: &Region, matrix: &mut AliasMatrix) -> usize {
    let bx = IvBox::from_nest(&region.loops);
    let may_pairs: Vec<_> = matrix
        .pairs()
        .filter(|&(_, _, l)| l.is_may())
        .map(|(p, _, _)| p)
        .collect();
    let mut changed = 0;
    for pair in may_pairs {
        let a = region
            .dfg
            .node(matrix.node(pair.older))
            .kind
            .mem_ref()
            .expect("matrix tracks memory ops")
            .clone();
        let b = region
            .dfg
            .node(matrix.node(pair.younger))
            .kind
            .mem_ref()
            .expect("matrix tracks memory ops")
            .clone();
        if let Some(label) = refine_pair(region, &bx, &a, &b) {
            if label != AliasLabel::May {
                matrix.set(pair, label);
                changed += 1;
            }
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Pair;
    use crate::stage1;
    use nachos_ir::{AffineExpr, BaseId, LoopInfo, ParamId, ParamInfo, RegionBuilder};

    fn sub_sym(idx: AffineExpr, scale: i64, p: ParamId, extent: Option<ScaledParam>) -> Subscript {
        Subscript {
            index: idx,
            stride: ScaledParam::symbolic(scale, p),
            extent,
        }
    }

    /// The equake-style pattern: A[i][j] vs A[i+1][j] with symbolic row
    /// stride — Stage 1 says MAY, Stage 4 proves NO via dimension 0.
    #[test]
    fn stencil_rows_proved_disjoint() {
        let mut b = RegionBuilder::new("equake-like");
        let i = b.enclosing_loop(LoopInfo::range("i", 0, 100));
        let j = b.enclosing_loop(LoopInfo::range("j", 0, 3));
        let n = b.param(ParamInfo::at_least("n", 3));
        let a = b.global("A", 1 << 20, 0);
        let mk = |row: AffineExpr, col: AffineExpr| {
            nachos_ir::MemRef::multi_dim(
                a,
                vec![
                    sub_sym(row, 8, n, None),
                    Subscript {
                        index: col,
                        stride: ScaledParam::constant(8),
                        extent: Some(ScaledParam::symbolic(1, n)),
                    },
                ],
            )
        };
        b.store(mk(AffineExpr::var(i), AffineExpr::var(j)), &[]);
        b.load(mk(AffineExpr::var(i).plus(1), AffineExpr::var(j)), &[]);
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        stage1::run(&r, &mut m);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::May)
        );
        let changed = run(&r, &mut m);
        assert_eq!(changed, 1);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::No)
        );
    }

    #[test]
    fn identical_subscripts_become_must() {
        let mut b = RegionBuilder::new("t");
        let i = b.enclosing_loop(LoopInfo::range("i", 0, 10));
        let n = b.param(ParamInfo::at_least("n", 4));
        let a = b.global("A", 1 << 20, 0);
        let mk = || {
            nachos_ir::MemRef::multi_dim(
                a,
                vec![
                    sub_sym(AffineExpr::var(i), 8, n, None),
                    Subscript {
                        index: AffineExpr::zero(),
                        stride: ScaledParam::constant(8),
                        extent: Some(ScaledParam::symbolic(1, n)),
                    },
                ],
            )
        };
        b.store(mk(), &[]);
        b.load(mk(), &[]);
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        stage1::run(&r, &mut m);
        run(&r, &mut m);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::MustExact)
        );
    }

    #[test]
    fn columns_distinguished_within_row() {
        // A[i][0] vs A[i][1]: dim 1 differs by constant 1 — NO.
        let mut b = RegionBuilder::new("t");
        let i = b.enclosing_loop(LoopInfo::range("i", 0, 10));
        let n = b.param(ParamInfo::at_least("n", 2));
        let a = b.global("A", 1 << 20, 0);
        let mk = |col: i64| {
            nachos_ir::MemRef::multi_dim(
                a,
                vec![
                    sub_sym(AffineExpr::var(i), 8, n, None),
                    Subscript {
                        index: AffineExpr::constant_expr(col),
                        stride: ScaledParam::constant(8),
                        extent: Some(ScaledParam::symbolic(1, n)),
                    },
                ],
            )
        };
        b.store(mk(0), &[]);
        b.load(mk(1), &[]);
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        stage1::run(&r, &mut m);
        run(&r, &mut m);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::No)
        );
    }

    #[test]
    fn crossing_subscripts_stay_may() {
        // A[i][j] vs A[j][i]: neither dimension's difference is sign-fixed.
        let mut b = RegionBuilder::new("t");
        let i = b.enclosing_loop(LoopInfo::range("i", 0, 10));
        let j = b.enclosing_loop(LoopInfo::range("j", 0, 10));
        let n = b.param(ParamInfo::at_least("n", 10));
        let a = b.global("A", 1 << 20, 0);
        let mk = |r0: AffineExpr, c0: AffineExpr| {
            nachos_ir::MemRef::multi_dim(
                a,
                vec![
                    sub_sym(r0, 8, n, None),
                    Subscript {
                        index: c0,
                        stride: ScaledParam::constant(8),
                        extent: Some(ScaledParam::symbolic(1, n)),
                    },
                ],
            )
        };
        b.store(mk(AffineExpr::var(i), AffineExpr::var(j)), &[]);
        b.load(mk(AffineExpr::var(j), AffineExpr::var(i)), &[]);
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        stage1::run(&r, &mut m);
        let changed = run(&r, &mut m);
        assert_eq!(changed, 0);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::May)
        );
    }

    #[test]
    fn wide_access_straddling_elements_not_separated() {
        // 8-byte accesses over 4-byte innermost stride: bijection breaks,
        // Stage 4 must refuse.
        let mut b = RegionBuilder::new("t");
        let i = b.enclosing_loop(LoopInfo::range("i", 0, 10));
        let n = b.param(ParamInfo::at_least("n", 4));
        let a = b.global("A", 1 << 20, 0);
        let mk = |col: i64| {
            nachos_ir::MemRef::multi_dim(
                a,
                vec![
                    sub_sym(AffineExpr::var(i), 4, n, None),
                    Subscript {
                        index: AffineExpr::constant_expr(col),
                        stride: ScaledParam::constant(4),
                        extent: Some(ScaledParam::symbolic(1, n)),
                    },
                ],
            )
            .with_size(8)
        };
        b.store(mk(0), &[]);
        b.load(mk(1), &[]);
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        stage1::run(&r, &mut m);
        assert_eq!(run(&r, &mut m), 0);
    }

    #[test]
    fn constant_stride_multi_iv_linearized() {
        // Stage 1 refuses multi-IV; Stage 4 proves disjoint by intervals:
        // g[64*i] vs g[8*j + 8] with i in [1,4], j in [0,6]:
        // delta = 64i - 8j - 8 in [64-48-8, 256-8] = [8, 248].
        let mut b = RegionBuilder::new("t");
        let i = b.enclosing_loop(LoopInfo::range("i", 1, 5));
        let j = b.enclosing_loop(LoopInfo::range("j", 0, 7));
        let g = b.global("g", 4096, 0);
        b.store(
            nachos_ir::MemRef::affine(g, AffineExpr::var(i).scaled(64)),
            &[],
        );
        b.load(
            nachos_ir::MemRef::affine(g, AffineExpr::var(j).scaled(8).plus(8)),
            &[],
        );
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        stage1::run(&r, &mut m);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::May)
        );
        run(&r, &mut m);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::No)
        );
    }

    #[test]
    fn different_bases_not_handled_here() {
        let mut b = RegionBuilder::new("t");
        let a0 = b.arg(0, nachos_ir::Provenance::Unknown);
        let a1 = b.arg(1, nachos_ir::Provenance::Unknown);
        b.store(nachos_ir::MemRef::affine(a0, AffineExpr::zero()), &[]);
        b.load(nachos_ir::MemRef::affine(a1, AffineExpr::zero()), &[]);
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        stage1::run(&r, &mut m);
        assert_eq!(run(&r, &mut m), 0);
        let _ = BaseId::new(0); // silence unused import lint in this cfg
    }
}
