//! Stage 3 — redundancy removal and MDE planning.
//!
//! Not every MUST/MAY alias relation needs an explicit memory dependency
//! edge: when a (transitive) data dependence already orders the pair, the
//! dataflow fabric enforces the ordering for free (paper §V-D, Figure 8).
//! Stage 3 walks the alias relations and keeps only the non-redundant
//! ones, checking reachability in the DFG incrementally as edges are
//! committed. MUST relations are enforced before MAY relations, and ST→LD
//! MUST relations are never pruned so that store-to-load forwarding
//! remains possible.

use crate::matrix::{AliasLabel, AliasMatrix, Pair, PairKind};
use crate::reach::Reachability;
use nachos_ir::{EdgeKind, NodeId, Region};

/// The set of memory dependency edges the compiler decided to enforce.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MdePlan {
    /// 1-bit ordering edges (MUST LD→ST / ST→ST, and non-forwardable
    /// ST→LD MUST pairs).
    pub order: Vec<(NodeId, NodeId)>,
    /// 64-bit store-to-load forwarding edges (exact ST→LD MUST pairs).
    pub forward: Vec<(NodeId, NodeId)>,
    /// Compiler-uncertain pairs: serialized by NACHOS-SW, checked in
    /// hardware by NACHOS.
    pub may: Vec<(NodeId, NodeId)>,
    /// MUST relations dropped as redundant.
    pub pruned_must: usize,
    /// MAY relations dropped as redundant.
    pub pruned_may: usize,
}

impl MdePlan {
    /// Total number of enforced MDEs.
    #[must_use]
    pub fn num_mdes(&self) -> usize {
        self.order.len() + self.forward.len() + self.may.len()
    }

    /// Total number of relations dropped as redundant.
    #[must_use]
    pub fn num_pruned(&self) -> usize {
        self.pruned_must + self.pruned_may
    }

    /// Inserts the planned edges into the region's DFG.
    ///
    /// # Panics
    ///
    /// Panics if an edge is rejected by the graph (which would indicate a
    /// planner bug: the plan is constructed acyclic and in program order).
    pub fn apply(&self, region: &mut Region) {
        for &(s, d) in &self.forward {
            region
                .dfg
                .add_edge(s, d, EdgeKind::Forward)
                .unwrap_or_else(|e| panic!("MDE plan inconsistent: {e}"));
        }
        for &(s, d) in &self.order {
            region
                .dfg
                .add_edge(s, d, EdgeKind::Order)
                .unwrap_or_else(|e| panic!("MDE plan inconsistent: {e}"));
        }
        for &(s, d) in &self.may {
            region
                .dfg
                .add_edge(s, d, EdgeKind::May)
                .unwrap_or_else(|e| panic!("MDE plan inconsistent: {e}"));
        }
    }
}

/// Plans the MDEs for a labeled region.
///
/// With `prune` set (Stage 3 enabled), relations already implied by
/// transitive dataflow (or previously committed MDEs) are dropped; without
/// it, every MUST/MAY relation becomes an edge (the behaviour figures 12
/// and 16 call the "baseline compiler" keeps pruning *on* — stage 3 is part
/// of the baseline — so `prune = false` exists mainly for ablation).
#[must_use]
pub fn plan_mdes(region: &Region, matrix: &AliasMatrix, prune: bool) -> MdePlan {
    let mut plan = MdePlan::default();
    let mut reach = Reachability::of_dfg(&region.dfg, &[EdgeKind::Data]);

    // Pass 1: exact ST→LD MUST pairs become forwarding edges. For each
    // load, only the youngest exact-matching older store forwards; other
    // ST→LD MUST pairs are enforced as ordering edges (partial overlap or
    // superseded forwarders). Forwarding is only safe when no store
    // *between* the forwarder and the load can intervene (a MAY or
    // partial-MUST store younger than the forwarder); the paper handles
    // these uncommon cases by downgrading to an ordering edge and stalling
    // the load until the stores complete.
    let mut st_ld_order: Vec<Pair> = Vec::new();
    let num = matrix.num_ops();
    for younger in 0..num {
        if matrix.is_store(younger) {
            continue;
        }
        let mut forwarder: Option<usize> = None;
        let mut uncertain_stores: Vec<usize> = Vec::new();
        for older in 0..younger {
            let pair = Pair { older, younger };
            if matrix.kind(pair) != PairKind::StLd {
                continue;
            }
            match matrix.get(pair) {
                Some(AliasLabel::MustExact) => {
                    if let Some(prev) = forwarder.replace(older) {
                        st_ld_order.push(Pair {
                            older: prev,
                            younger,
                        });
                    }
                }
                Some(AliasLabel::MustPartial) => {
                    st_ld_order.push(pair);
                    uncertain_stores.push(older);
                }
                Some(AliasLabel::May) => uncertain_stores.push(older),
                _ => {}
            }
        }
        if let Some(older) = forwarder {
            let safe = !uncertain_stores.iter().any(|&s| s > older);
            if safe {
                let (s, d) = (matrix.node(older), matrix.node(younger));
                plan.forward.push((s, d));
                reach.add_edge(s, d);
            } else {
                st_ld_order.push(Pair { older, younger });
            }
        }
    }
    // ST→LD MUST relations are never pruned (forwarding must stay
    // possible), so commit them unconditionally.
    for pair in st_ld_order {
        let (s, d) = (matrix.node(pair.older), matrix.node(pair.younger));
        plan.order.push((s, d));
        reach.add_edge(s, d);
    }

    // Shortest-span relations first, so that a committed chain
    // (e.g. 1→3, 3→5) prunes the long relation it implies (1→5), as in
    // the paper's Figure 8.
    let by_span = |pairs: &mut Vec<Pair>| {
        pairs.sort_by_key(|p| (p.younger - p.older, p.younger));
    };

    // Pass 2: remaining MUST relations (LD→ST, ST→ST).
    let mut musts: Vec<Pair> = matrix
        .pairs()
        .filter(|&(_, kind, label)| label.is_must() && kind != PairKind::StLd)
        .map(|(p, _, _)| p)
        .collect();
    by_span(&mut musts);
    for pair in musts {
        let (s, d) = (matrix.node(pair.older), matrix.node(pair.younger));
        if prune && reach.reaches(s, d) {
            plan.pruned_must += 1;
        } else {
            plan.order.push((s, d));
            reach.add_edge(s, d);
        }
    }

    // Pass 3: MAY relations, after all MUSTs are in place. Committed MAY
    // edges are deliberately *not* added to the closure: in NACHOS
    // hardware mode a MAY edge does not guarantee ordering (the runtime
    // check releases the younger operation when the addresses differ), so
    // MAY-through-MAY transitivity would be unsound.
    let mut mays: Vec<Pair> = matrix
        .pairs()
        .filter(|&(_, _, label)| label.is_may())
        .map(|(p, _, _)| p)
        .collect();
    by_span(&mut mays);
    for pair in mays {
        let (s, d) = (matrix.node(pair.older), matrix.node(pair.younger));
        if prune && reach.reaches(s, d) {
            plan.pruned_may += 1;
        } else {
            plan.may.push((s, d));
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage1;
    use nachos_ir::{AffineExpr, MemRef, Provenance, RegionBuilder};

    /// st g[0]; ld g[0] (data-dependent on st? no); st g[0] again.
    #[test]
    fn forwarding_chosen_from_youngest_exact_store() {
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let s0 = b.store(m.clone(), &[]);
        let s1 = b.store(m.clone(), &[]);
        let ld = b.load(m, &[]);
        let r = b.finish();
        let mut matrix = AliasMatrix::new(&r);
        stage1::run(&r, &mut matrix);
        let plan = plan_mdes(&r, &matrix, true);
        assert_eq!(plan.forward, vec![(s1, ld)]);
        // s0→ld superseded: enforced as order; s0→s1 must-order.
        assert!(plan.order.contains(&(s0, ld)));
        assert!(plan.order.contains(&(s0, s1)));
    }

    #[test]
    fn transitive_data_dependence_prunes_order() {
        // ld A; compute; st A — the data chain already orders them.
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let ld = b.load(m.clone(), &[]);
        let add = b.int_op(nachos_ir::IntOp::Add, &[ld]);
        let _st = b.store(m, &[add]);
        let r = b.finish();
        let mut matrix = AliasMatrix::new(&r);
        stage1::run(&r, &mut matrix);
        let plan = plan_mdes(&r, &matrix, true);
        assert_eq!(plan.pruned_must, 1);
        assert!(plan.order.is_empty());
        assert_eq!(plan.num_mdes(), 0);
    }

    #[test]
    fn without_prune_everything_is_enforced() {
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let ld = b.load(m.clone(), &[]);
        let add = b.int_op(nachos_ir::IntOp::Add, &[ld]);
        let _st = b.store(m, &[add]);
        let r = b.finish();
        let mut matrix = AliasMatrix::new(&r);
        stage1::run(&r, &mut matrix);
        let plan = plan_mdes(&r, &matrix, false);
        assert_eq!(plan.pruned_must, 0);
        assert_eq!(plan.order.len(), 1);
    }

    #[test]
    fn chain_of_musts_is_transitively_pruned() {
        // Figure 8: st1 -> st3 -> st5 chain makes 1->5 redundant.
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let _s1 = b.store(m.clone(), &[]);
        let _s3 = b.store(m.clone(), &[]);
        let _s5 = b.store(m, &[]);
        let r = b.finish();
        let mut matrix = AliasMatrix::new(&r);
        stage1::run(&r, &mut matrix);
        let plan = plan_mdes(&r, &matrix, true);
        // Three MUST relations (1-3, 3-5, 1-5); 1-5 pruned via the chain.
        assert_eq!(plan.order.len(), 2);
        assert_eq!(plan.pruned_must, 1);
    }

    #[test]
    fn may_pruned_by_committed_must() {
        // old store MUST-orders to a middle store; a MAY from old to a
        // younger op reachable through the middle is pruned.
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        let a0 = b.arg(0, Provenance::Unknown);
        let m = MemRef::affine(g, AffineExpr::zero());
        let s_old = b.store(m.clone(), &[]);
        let s_mid = b.store(m, &[]);
        // Younger store via unknown arg: MAY with both older stores.
        let s_arg = b.store(MemRef::affine(a0, AffineExpr::zero()), &[s_mid]);
        let r = b.finish();
        let mut matrix = AliasMatrix::new(&r);
        stage1::run(&r, &mut matrix);
        let plan = plan_mdes(&r, &matrix, true);
        // MUST s_old->s_mid committed; MAY s_mid->s_arg committed? s_arg
        // data-depends on s_mid, so that MAY is pruned; MAY s_old->s_arg
        // pruned transitively.
        assert!(plan.order.contains(&(s_old, s_mid)));
        assert_eq!(plan.may.len(), 0);
        assert_eq!(plan.pruned_may, 2);
        assert!(!plan.order.contains(&(s_mid, s_arg)));
    }

    #[test]
    fn apply_inserts_edges() {
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        b.store(m.clone(), &[]);
        b.load(m, &[]);
        let mut r = b.finish();
        let mut matrix = AliasMatrix::new(&r);
        stage1::run(&r, &mut matrix);
        let plan = plan_mdes(&r, &matrix, true);
        assert_eq!(plan.forward.len(), 1);
        plan.apply(&mut r);
        assert_eq!(r.dfg.count_edges(EdgeKind::Forward), 1);
    }
}
