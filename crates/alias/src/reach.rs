//! Incremental transitive reachability over a DAG.
//!
//! Stage 3 repeatedly asks "is the younger operation already reachable from
//! the older one?" while *adding* the edges it decides to keep. This module
//! maintains a full transitive-closure bit matrix with cheap incremental
//! edge insertion: adding `u → v` ORs `reach(v) ∪ {v}` into every vertex
//! that reaches `u`.

use nachos_ir::{Dfg, EdgeKind, NodeId};

/// Transitive-closure bit matrix over a fixed vertex set.
#[derive(Clone, Debug)]
pub struct Reachability {
    n: usize,
    words: usize,
    bits: Vec<u64>,
}

impl Reachability {
    /// Builds the closure of `dfg` restricted to edges of the given kinds.
    #[must_use]
    pub fn of_dfg(dfg: &Dfg, kinds: &[EdgeKind]) -> Self {
        let mut r = Self::empty(dfg.num_nodes());
        // Process in reverse topological order so each vertex's row is
        // final when its predecessors consume it.
        let order = dfg.topo_order();
        for &n in order.iter().rev() {
            for e in dfg.out_edges(n) {
                if kinds.contains(&e.kind) {
                    r.set_bit(n.index(), e.dst.index());
                    r.or_row(n.index(), e.dst.index());
                }
            }
        }
        r
    }

    /// An empty relation over `n` vertices.
    #[must_use]
    pub fn empty(n: usize) -> Self {
        let words = n.div_ceil(64).max(1);
        Self {
            n,
            words,
            bits: vec![0; n * words],
        }
    }

    fn set_bit(&mut self, src: usize, dst: usize) {
        self.bits[src * self.words + dst / 64] |= 1 << (dst % 64);
    }

    fn or_row(&mut self, dst_row: usize, src_row: usize) {
        let (d, s) = (dst_row * self.words, src_row * self.words);
        for w in 0..self.words {
            let v = self.bits[s + w];
            self.bits[d + w] |= v;
        }
    }

    /// `true` if `to` is reachable from `from` via one or more edges.
    #[must_use]
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        let (f, t) = (from.index(), to.index());
        debug_assert!(f < self.n && t < self.n);
        self.bits[f * self.words + t / 64] & (1 << (t % 64)) != 0
    }

    /// Inserts edge `u → v` and restores transitive closure.
    #[allow(clippy::needless_range_loop)] // `w` indexes two buffers in lockstep
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        let (ui, vi) = (u.index(), v.index());
        debug_assert!(ui < self.n && vi < self.n);
        if self.reaches(u, v) {
            return;
        }
        // Row to merge: reach(v) ∪ {v}.
        let mut merged = vec![0u64; self.words];
        merged.copy_from_slice(&self.bits[vi * self.words..(vi + 1) * self.words]);
        merged[vi / 64] |= 1 << (vi % 64);
        // Update u itself and everything that reaches u.
        for a in 0..self.n {
            let reaches_u = a == ui || self.bits[a * self.words + ui / 64] & (1 << (ui % 64)) != 0;
            if reaches_u {
                let base = a * self.words;
                for w in 0..self.words {
                    self.bits[base + w] |= merged[w];
                }
            }
        }
    }

    /// Number of vertices.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nachos_ir::{AffineExpr, IntOp, MemRef, OpKind, RegionBuilder};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn closure_of_chain() {
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        let a = b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
        let c = b.int_op(IntOp::Add, &[a]);
        let d = b.store(MemRef::affine(g, AffineExpr::zero()), &[c]);
        let r = b.finish();
        let reach = Reachability::of_dfg(&r.dfg, &[EdgeKind::Data]);
        assert!(reach.reaches(a, c));
        assert!(reach.reaches(a, d));
        assert!(reach.reaches(c, d));
        assert!(!reach.reaches(d, a));
        assert!(!reach.reaches(a, a), "reachability excludes the empty path");
    }

    #[test]
    fn closure_respects_kind_filter() {
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        let a = b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
        let d = b.store(MemRef::affine(g, AffineExpr::zero()), &[]);
        let mut r = b.finish();
        r.dfg.add_edge(a, d, EdgeKind::Order).unwrap();
        let data_only = Reachability::of_dfg(&r.dfg, &[EdgeKind::Data]);
        assert!(!data_only.reaches(a, d));
        let both = Reachability::of_dfg(&r.dfg, &[EdgeKind::Data, EdgeKind::Order]);
        assert!(both.reaches(a, d));
    }

    #[test]
    fn incremental_add_edge_matches_recompute() {
        let mut r = Reachability::empty(5);
        r.add_edge(n(0), n(1));
        r.add_edge(n(1), n(2));
        assert!(r.reaches(n(0), n(2)));
        r.add_edge(n(3), n(0));
        assert!(r.reaches(n(3), n(2)));
        assert!(!r.reaches(n(2), n(3)));
        r.add_edge(n(2), n(4));
        // Everything upstream now reaches 4.
        for i in 0..4 {
            assert!(r.reaches(n(i), n(4)), "{i} should reach 4");
        }
        // Redundant insert is a no-op.
        let before = r.clone().bits;
        r.add_edge(n(0), n(4));
        assert_eq!(before, r.bits);
    }

    #[test]
    fn wide_graph_crosses_word_boundary() {
        let mut r = Reachability::empty(130);
        for i in 0..129 {
            r.add_edge(n(i), n(i + 1));
        }
        assert!(r.reaches(n(0), n(129)));
        assert!(!r.reaches(n(129), n(0)));
    }

    #[test]
    fn diamond_dataflow() {
        let mut b = RegionBuilder::new("t");
        let x = b.input();
        let l2 = b.int_op(IntOp::Add, &[x]);
        let r2 = b.int_op(IntOp::Mul, &[x]);
        let join = b.int_op(IntOp::Add, &[l2, r2]);
        let reg = b.finish();
        let reach = Reachability::of_dfg(&reg.dfg, &[EdgeKind::Data]);
        assert!(reach.reaches(x, join));
        assert!(!reach.reaches(l2, r2));
        assert_eq!(reach.num_vertices(), 4);
        // Keep OpKind import alive for clarity of test inputs.
        assert!(matches!(reg.dfg.node(x).kind, OpKind::Input { .. }));
    }
}
