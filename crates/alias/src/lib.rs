//! # nachos-alias — the NACHOS-SW compiler
//!
//! Software-only memory disambiguation for acceleration regions, as
//! described in §V of *NACHOS: Software-Driven Hardware-Assisted Memory
//! Disambiguation for Accelerators* (HPCA 2018).
//!
//! For every ordering-relevant pair of memory operations in a region the
//! compiler assigns a label — [`AliasLabel::No`], [`AliasLabel::May`] or
//! MUST — through four refinement stages:
//!
//! 1. **Stage 1** ([`stage1`]): intraprocedural LLVM-style analyses —
//!    base-object disambiguation, TBAA, `restrict` scopes and
//!    single-induction-variable affine (SCEV) reasoning.
//! 2. **Stage 2** ([`stage2`]): inter-procedural provenance tracing of
//!    region arguments back to caller objects (MAY→NO).
//! 3. **Stage 3** ([`stage3`]): pruning of relations already implied by
//!    transitive data dependence; the survivors become memory dependency
//!    edges (MDEs).
//! 4. **Stage 4** ([`stage4`]): polyhedral dependence tests on
//!    multidimensional array subscripts (MAY→NO), the cases where SCEV
//!    gives up because strides are symbolic.
//!
//! The entry points are [`analyze`] (pure) and [`compile`] (inserts the
//! planned MDEs into the region's dataflow graph).
//!
//! ```
//! use nachos_alias::{compile, StageConfig};
//! use nachos_ir::{AffineExpr, EdgeKind, MemRef, RegionBuilder};
//!
//! let mut b = RegionBuilder::new("demo");
//! let g = b.global("g", 64, 0);
//! let m = MemRef::affine(g, AffineExpr::zero());
//! b.store(m.clone(), &[]);
//! b.load(m, &[]);
//! let mut region = b.finish();
//! let analysis = compile(&mut region, StageConfig::full());
//! // The exact store→load dependence became a forwarding edge:
//! assert_eq!(region.dfg.count_edges(EdgeKind::Forward), 1);
//! assert!(analysis.report.fully_resolved());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod afftest;
pub mod audit;
mod classify;
pub mod exact;
mod local;
mod matrix;
pub mod optimize;
mod pipeline;
mod reach;
pub mod stage1;
pub mod stage2;
pub mod stage3;
pub mod stage4;

pub use audit::{
    audit, audit_with, differential_no_collisions, AuditConfig, Code, Diagnostic, Lint, Severity,
    Site,
};
pub use classify::{classify_same_object, linearize, overlap_to_label};
pub use local::wire_local_deps;
pub use matrix::{AliasLabel, AliasMatrix, LabelCounts, Pair, PairKind};
pub use optimize::{optimize, ArithFact, Certificate, OptOutcome, OptStats};
pub use pipeline::{analyze, compile, may_fanin, Analysis, AnalysisReport, StageConfig};
pub use reach::Reachability;
pub use stage3::MdePlan;
