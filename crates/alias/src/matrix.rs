//! The pairwise alias-label matrix over a region's memory operations.

use nachos_ir::{NodeId, Region};
use std::fmt;

/// The alias label the compiler assigns to a pair of memory operations.
///
/// MUST labels additionally record whether the overlap is *exact* (same
/// address, same size — eligible for store-to-load forwarding) or *partial*
/// (overlapping but not identical — enforced as an ordering edge only).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AliasLabel {
    /// Provably disjoint; the operations may execute in parallel.
    No,
    /// The compiler is uncertain (alias analysis gave up).
    May,
    /// Provably the same address and size.
    MustExact,
    /// Provably overlapping, but not an exact match.
    MustPartial,
}

impl AliasLabel {
    /// `true` for either MUST variant.
    #[must_use]
    pub fn is_must(self) -> bool {
        matches!(self, AliasLabel::MustExact | AliasLabel::MustPartial)
    }

    /// `true` for MAY.
    #[must_use]
    pub fn is_may(self) -> bool {
        self == AliasLabel::May
    }

    /// `true` for NO.
    #[must_use]
    pub fn is_no(self) -> bool {
        self == AliasLabel::No
    }
}

impl fmt::Display for AliasLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AliasLabel::No => "NO",
            AliasLabel::May => "MAY",
            AliasLabel::MustExact => "MUST(exact)",
            AliasLabel::MustPartial => "MUST(partial)",
        };
        f.write_str(s)
    }
}

/// The kind of an (older, younger) memory-operation pair.
///
/// Only ST-ST, ST-LD and LD-ST pairs require ordering; LD-LD pairs are
/// irrelevant in a single-threaded region and are not tracked.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PairKind {
    /// Older store, younger store (final-value order).
    StSt,
    /// Older store, younger load (forwarding).
    StLd,
    /// Older load, younger store (anti-dependence).
    LdSt,
    /// Two loads — no ordering required.
    LdLd,
}

impl PairKind {
    /// `true` if the pair requires disambiguation at all.
    #[must_use]
    pub fn needs_ordering(self) -> bool {
        self != PairKind::LdLd
    }
}

/// A pair of memory operations identified by their indices into the
/// matrix's op list (`older < younger` in program order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Pair {
    /// Index of the older operation.
    pub older: usize,
    /// Index of the younger operation.
    pub younger: usize,
}

/// Triangular matrix of [`AliasLabel`]s over the disambiguation-relevant
/// memory operations of a region (loads/stores to main memory; scratchpad
/// accesses are perfectly disambiguated by the compiler and excluded).
///
/// Pair labels are stored for ST-ST, ST-LD and LD-ST pairs; LD-LD pairs
/// report `None`.
#[derive(Clone, Debug)]
pub struct AliasMatrix {
    ops: Vec<NodeId>,
    is_store: Vec<bool>,
    labels: Vec<Option<AliasLabel>>,
}

impl AliasMatrix {
    /// Builds the (unlabeled) matrix for a region over its
    /// disambiguation-relevant (main-memory) operations. All
    /// ordering-relevant pairs start as [`AliasLabel::May`] — the sound
    /// default before any analysis runs.
    #[must_use]
    pub fn new(region: &Region) -> Self {
        Self::for_space(region, nachos_ir::MemSpace::Memory)
    }

    /// Builds the matrix over the memory operations of one address space.
    /// The scratchpad variant is used by the compiler's local-dependency
    /// pass (scratchpad data is perfectly disambiguated but still needs
    /// its true dependencies wired into the dataflow graph).
    #[must_use]
    pub fn for_space(region: &Region, space: nachos_ir::MemSpace) -> Self {
        let ops: Vec<NodeId> = region
            .dfg
            .mem_ops()
            .iter()
            .copied()
            .filter(|&n| {
                region
                    .dfg
                    .node(n)
                    .kind
                    .mem_ref()
                    .is_some_and(|m| m.space == space)
            })
            .collect();
        let is_store: Vec<bool> = ops
            .iter()
            .map(|&n| region.dfg.node(n).kind.is_store())
            .collect();
        let n = ops.len();
        let mut labels = vec![None; n * n.saturating_sub(1) / 2];
        for j in 1..n {
            for i in 0..j {
                if is_store[i] || is_store[j] {
                    labels[Self::tri_index(i, j)] = Some(AliasLabel::May);
                }
            }
        }
        Self {
            ops,
            is_store,
            labels,
        }
    }

    fn tri_index(older: usize, younger: usize) -> usize {
        debug_assert!(older < younger);
        younger * (younger - 1) / 2 + older
    }

    /// The disambiguation-relevant memory operations, oldest first.
    #[must_use]
    pub fn ops(&self) -> &[NodeId] {
        &self.ops
    }

    /// Number of tracked operations.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// `true` if operation `idx` is a store.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn is_store(&self, idx: usize) -> bool {
        self.is_store[idx]
    }

    /// The kind of a pair.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or not `older < younger`.
    #[must_use]
    pub fn kind(&self, pair: Pair) -> PairKind {
        assert!(pair.older < pair.younger && pair.younger < self.ops.len());
        match (self.is_store[pair.older], self.is_store[pair.younger]) {
            (true, true) => PairKind::StSt,
            (true, false) => PairKind::StLd,
            (false, true) => PairKind::LdSt,
            (false, false) => PairKind::LdLd,
        }
    }

    /// The label of a pair; `None` for untracked (LD-LD) pairs.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range or not `older < younger`.
    #[must_use]
    pub fn get(&self, pair: Pair) -> Option<AliasLabel> {
        assert!(pair.older < pair.younger && pair.younger < self.ops.len());
        self.labels[Self::tri_index(pair.older, pair.younger)]
    }

    /// Sets the label of an ordering-relevant pair.
    ///
    /// # Panics
    ///
    /// Panics if the pair is LD-LD (untracked) or out of range.
    pub fn set(&mut self, pair: Pair, label: AliasLabel) {
        assert!(
            self.kind(pair).needs_ordering(),
            "cannot label an LD-LD pair"
        );
        self.labels[Self::tri_index(pair.older, pair.younger)] = Some(label);
    }

    /// Iterates over all ordering-relevant pairs with their labels.
    pub fn pairs(&self) -> impl Iterator<Item = (Pair, PairKind, AliasLabel)> + '_ {
        (1..self.ops.len()).flat_map(move |younger| {
            (0..younger).filter_map(move |older| {
                let pair = Pair { older, younger };
                self.get(pair).map(|label| (pair, self.kind(pair), label))
            })
        })
    }

    /// Number of ordering-relevant pairs (the denominator of the paper's
    /// "% pairwise alias relations").
    #[must_use]
    pub fn num_tracked_pairs(&self) -> usize {
        self.labels.iter().filter(|l| l.is_some()).count()
    }

    /// Counts tracked pairs currently carrying each label, as
    /// `(no, may, must)`.
    #[must_use]
    pub fn label_counts(&self) -> LabelCounts {
        let mut counts = LabelCounts::default();
        for label in self.labels.iter().flatten() {
            match label {
                AliasLabel::No => counts.no += 1,
                AliasLabel::May => counts.may += 1,
                AliasLabel::MustExact | AliasLabel::MustPartial => counts.must += 1,
            }
        }
        counts
    }

    /// The node id of operation `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn node(&self, idx: usize) -> NodeId {
        self.ops[idx]
    }
}

/// Aggregate label counts over tracked pairs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LabelCounts {
    /// Pairs labeled NO.
    pub no: usize,
    /// Pairs labeled MAY.
    pub may: usize,
    /// Pairs labeled MUST (exact or partial).
    pub must: usize,
}

impl LabelCounts {
    /// Total tracked pairs.
    #[must_use]
    pub fn total(&self) -> usize {
        self.no + self.may + self.must
    }

    /// MAY pairs as a percentage of tracked pairs (0 when empty).
    #[must_use]
    pub fn pct_may(&self) -> f64 {
        percent(self.may, self.total())
    }

    /// MUST pairs as a percentage of tracked pairs (0 when empty).
    #[must_use]
    pub fn pct_must(&self) -> f64 {
        percent(self.must, self.total())
    }

    /// NO pairs as a percentage of tracked pairs (0 when empty).
    #[must_use]
    pub fn pct_no(&self) -> f64 {
        percent(self.no, self.total())
    }
}

fn percent(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nachos_ir::{AffineExpr, MemRef, MemSpace, RegionBuilder};

    fn region_lsls() -> Region {
        // load, store, load, store on one global.
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 256, 0);
        let m = |o: i64| MemRef::affine(g, AffineExpr::constant_expr(o));
        b.load(m(0), &[]);
        b.store(m(8), &[]);
        b.load(m(16), &[]);
        b.store(m(24), &[]);
        b.finish()
    }

    #[test]
    fn matrix_tracks_non_ldld_pairs() {
        let r = region_lsls();
        let m = AliasMatrix::new(&r);
        assert_eq!(m.num_ops(), 4);
        // 6 pairs total; (ld0, ld2) is LD-LD and untracked.
        assert_eq!(m.num_tracked_pairs(), 5);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 2
            }),
            None
        );
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::May),
            "tracked pairs default to MAY"
        );
    }

    #[test]
    fn pair_kinds() {
        let r = region_lsls();
        let m = AliasMatrix::new(&r);
        assert_eq!(
            m.kind(Pair {
                older: 0,
                younger: 1
            }),
            PairKind::LdSt
        );
        assert_eq!(
            m.kind(Pair {
                older: 1,
                younger: 2
            }),
            PairKind::StLd
        );
        assert_eq!(
            m.kind(Pair {
                older: 1,
                younger: 3
            }),
            PairKind::StSt
        );
        assert_eq!(
            m.kind(Pair {
                older: 0,
                younger: 2
            }),
            PairKind::LdLd
        );
        assert!(!PairKind::LdLd.needs_ordering());
    }

    #[test]
    fn set_get_roundtrip_and_counts() {
        let r = region_lsls();
        let mut m = AliasMatrix::new(&r);
        m.set(
            Pair {
                older: 0,
                younger: 1,
            },
            AliasLabel::No,
        );
        m.set(
            Pair {
                older: 1,
                younger: 2,
            },
            AliasLabel::MustExact,
        );
        let c = m.label_counts();
        assert_eq!(c.no, 1);
        assert_eq!(c.must, 1);
        assert_eq!(c.may, 3);
        assert_eq!(c.total(), 5);
        assert!((c.pct_may() - 60.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "LD-LD")]
    fn setting_ldld_panics() {
        let r = region_lsls();
        let mut m = AliasMatrix::new(&r);
        m.set(
            Pair {
                older: 0,
                younger: 2,
            },
            AliasLabel::No,
        );
    }

    #[test]
    fn scratchpad_ops_are_excluded() {
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 256, 0);
        let mem = MemRef::affine(g, AffineExpr::zero());
        let local = mem.clone().with_space(MemSpace::Scratchpad);
        b.load(mem, &[]);
        b.store(local, &[]);
        let r = b.finish();
        let m = AliasMatrix::new(&r);
        assert_eq!(m.num_ops(), 1);
        assert_eq!(m.num_tracked_pairs(), 0);
    }

    #[test]
    fn pairs_iterator_covers_all_tracked() {
        let r = region_lsls();
        let m = AliasMatrix::new(&r);
        let listed: Vec<_> = m.pairs().collect();
        assert_eq!(listed.len(), 5);
        assert!(listed
            .iter()
            .all(|&(p, k, _)| k.needs_ordering() && p.older < p.younger));
    }

    #[test]
    fn label_predicates() {
        assert!(AliasLabel::MustExact.is_must());
        assert!(AliasLabel::MustPartial.is_must());
        assert!(AliasLabel::May.is_may());
        assert!(AliasLabel::No.is_no());
        assert!(!AliasLabel::No.is_must());
        assert_eq!(AliasLabel::MustExact.to_string(), "MUST(exact)");
    }

    #[test]
    fn empty_counts_percentages() {
        let c = LabelCounts::default();
        assert_eq!(c.pct_may(), 0.0);
        assert_eq!(c.pct_must(), 0.0);
        assert_eq!(c.pct_no(), 0.0);
    }
}
