//! Stage 1 — intraprocedural alias analysis (LLVM-style).
//!
//! Assigns an initial NO / MAY / MUST label to every ordering-relevant pair
//! of memory operations, using the analyses LLVM 3.8 applies inside a
//! function (paper §V-B): stateless base-object disambiguation (BasicAA),
//! type-based checks (TBAA), `restrict`-scope checks (ScopedNoAlias) and
//! single-induction-variable affine reasoning over pointer arithmetic
//! (SCEV). Multi-variable and symbolic-stride differences are beyond this
//! stage and remain MAY (Stage 4's territory); unknown provenance remains
//! MAY unless a non-escaping local rules it out.

use crate::afftest::IvBox;
use crate::classify::classify_same_object;
use crate::matrix::{AliasLabel, AliasMatrix};
use nachos_ir::{BaseKind, MemRef, PtrExpr, Region};

/// How the provenance of two pointers relates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BaseRel {
    /// Provably different objects.
    Distinct,
    /// Provably the same object — fall through to offset analysis.
    Same,
    /// Cannot tell.
    Unknown,
}

fn base_relation(region: &Region, a: &MemRef, b: &MemRef) -> BaseRel {
    match (&a.ptr, &b.ptr) {
        (PtrExpr::Unknown { source: sa, .. }, PtrExpr::Unknown { source: sb, .. }) => {
            if sa == sb {
                BaseRel::Same
            } else {
                BaseRel::Unknown
            }
        }
        (PtrExpr::Unknown { .. }, _) | (_, PtrExpr::Unknown { .. }) => {
            // An unknown pointer cannot point at a non-escaping region
            // stack slot.
            let known = a.ptr.base().or(b.ptr.base()).expect("one side has a base");
            match region.base(known).kind {
                BaseKind::Stack { .. } => BaseRel::Distinct,
                _ => BaseRel::Unknown,
            }
        }
        _ => {
            let (ba, bb) = (
                a.ptr.base().expect("affine/multidim has base"),
                b.ptr.base().expect("affine/multidim has base"),
            );
            if ba == bb {
                return BaseRel::Same;
            }
            let (ka, kb) = (&region.base(ba).kind, &region.base(bb).kind);
            match (ka, kb) {
                // Two distinct globals may still be the same caller object
                // only if their caller identities coincide.
                (BaseKind::Global { .. }, BaseKind::Global { .. }) => {
                    match (region.base(ba).caller_object, region.base(bb).caller_object) {
                        (Some(ca), Some(cb)) if ca == cb => BaseRel::Same,
                        _ => BaseRel::Distinct,
                    }
                }
                // Identified objects of different identity never overlap.
                _ if ka.is_identified_object() && kb.is_identified_object() => BaseRel::Distinct,
                // An argument cannot alias a non-escaping stack slot.
                (BaseKind::Arg { .. }, BaseKind::Stack { .. })
                | (BaseKind::Stack { .. }, BaseKind::Arg { .. }) => BaseRel::Distinct,
                // Argument vs global/heap/argument: unknown without
                // inter-procedural information (Stage 2).
                _ => BaseRel::Unknown,
            }
        }
    }
}

/// Classifies a single pair of memory references (Stage 1 power).
#[must_use]
pub fn classify_pair(region: &Region, bx: &IvBox, a: &MemRef, b: &MemRef) -> AliasLabel {
    // ScopedNoAlias: pointers from different `restrict` scopes never alias.
    if let (Some(sa), Some(sb)) = (a.noalias_scope, b.noalias_scope) {
        if sa != sb {
            return AliasLabel::No;
        }
    }
    // TBAA: incompatible access types never alias.
    if !a.ty.compatible(b.ty) {
        return AliasLabel::No;
    }
    match base_relation(region, a, b) {
        BaseRel::Distinct => AliasLabel::No,
        BaseRel::Unknown => AliasLabel::May,
        BaseRel::Same => match (&a.ptr, &b.ptr) {
            (PtrExpr::Unknown { offset: oa, .. }, PtrExpr::Unknown { offset: ob, .. }) => {
                // Same unknown pointer, constant offsets.
                let delta = oa - ob;
                if delta == 0 && a.size == b.size {
                    AliasLabel::MustExact
                } else if delta > -i64::from(a.size) && delta < i64::from(b.size) {
                    AliasLabel::MustPartial
                } else {
                    AliasLabel::No
                }
            }
            _ => classify_same_object(a, b, bx, false),
        },
    }
}

/// Runs Stage 1 over every tracked pair of the matrix.
pub fn run(region: &Region, matrix: &mut AliasMatrix) {
    let bx = IvBox::from_nest(&region.loops);
    let pairs: Vec<_> = matrix.pairs().map(|(p, _, _)| p).collect();
    for pair in pairs {
        let a = region
            .dfg
            .node(matrix.node(pair.older))
            .kind
            .mem_ref()
            .expect("matrix tracks memory ops")
            .clone();
        let b = region
            .dfg
            .node(matrix.node(pair.younger))
            .kind
            .mem_ref()
            .expect("matrix tracks memory ops")
            .clone();
        matrix.set(pair, classify_pair(region, &bx, &a, &b));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Pair;
    use nachos_ir::{AccessType, AffineExpr, LoopInfo, MemRef, Provenance, RegionBuilder, ScopeId};

    fn bx() -> IvBox {
        IvBox::from_bounds(vec![(0, 7)])
    }

    #[test]
    fn distinct_globals_no_alias() {
        let mut b = RegionBuilder::new("t");
        let g1 = b.global("a", 64, 0);
        let g2 = b.global("b", 64, 1);
        let r = {
            b.store(MemRef::affine(g1, AffineExpr::zero()), &[]);
            b.load(MemRef::affine(g2, AffineExpr::zero()), &[]);
            b.finish()
        };
        let mut m = AliasMatrix::new(&r);
        run(&r, &mut m);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::No)
        );
    }

    #[test]
    fn globals_with_same_caller_identity_are_same_object() {
        let mut b = RegionBuilder::new("t");
        let g1 = b.global("alias_a", 64, 7);
        let g2 = b.global("alias_b", 64, 7);
        b.store(MemRef::affine(g1, AffineExpr::zero()), &[]);
        b.load(MemRef::affine(g2, AffineExpr::zero()), &[]);
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        run(&r, &mut m);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::MustExact)
        );
    }

    #[test]
    fn same_base_offsets() {
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        b.store(MemRef::affine(g, AffineExpr::constant_expr(0)), &[]);
        b.load(MemRef::affine(g, AffineExpr::constant_expr(8)), &[]);
        b.store(MemRef::affine(g, AffineExpr::constant_expr(0)), &[]);
        b.load(
            MemRef::affine(g, AffineExpr::constant_expr(4)).with_size(4),
            &[],
        );
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        run(&r, &mut m);
        // st@0 vs ld@8: disjoint.
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::No)
        );
        // st@0 vs st@0: exact.
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 2
            }),
            Some(AliasLabel::MustExact)
        );
        // st@0 (8B) vs ld@4 (4B): partial overlap.
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 3
            }),
            Some(AliasLabel::MustPartial)
        );
    }

    #[test]
    fn strided_accesses_use_scev_reasoning() {
        let mut b = RegionBuilder::new("t");
        let i = b.enclosing_loop(LoopInfo::range("i", 0, 8));
        let g = b.global("g", 1024, 0);
        // st g[8i], ld g[8i+4] (4-byte): constant delta 4 with 4B accesses
        // at delta -4..? window: a=st size 4, b=ld size 4, delta -4 => disjoint.
        b.store(
            MemRef::affine(g, AffineExpr::var(i).scaled(8)).with_size(4),
            &[],
        );
        b.load(
            MemRef::affine(g, AffineExpr::var(i).scaled(8).plus(4)).with_size(4),
            &[],
        );
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        run(&r, &mut m);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::No)
        );
    }

    #[test]
    fn tbaa_and_scopes() {
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        let int_ty = AccessType(1);
        let fp_ty = AccessType(2);
        b.store(MemRef::affine(g, AffineExpr::zero()).with_type(int_ty), &[]);
        b.load(MemRef::affine(g, AffineExpr::zero()).with_type(fp_ty), &[]);
        b.store(
            MemRef::affine(g, AffineExpr::zero()).with_scope(ScopeId::new(0)),
            &[],
        );
        b.load(
            MemRef::affine(g, AffineExpr::zero()).with_scope(ScopeId::new(1)),
            &[],
        );
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        run(&r, &mut m);
        // TBAA-incompatible.
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::No)
        );
        // Different restrict scopes.
        assert_eq!(
            m.get(Pair {
                older: 2,
                younger: 3
            }),
            Some(AliasLabel::No)
        );
    }

    #[test]
    fn args_are_opaque_in_stage1() {
        let mut b = RegionBuilder::new("t");
        let a0 = b.arg(0, Provenance::Object(0));
        let a1 = b.arg(1, Provenance::Object(1));
        let s = b.stack("local", 64);
        let g = b.global("g", 64, 5);
        b.store(MemRef::affine(a0, AffineExpr::zero()), &[]);
        b.load(MemRef::affine(a1, AffineExpr::zero()), &[]);
        b.store(MemRef::affine(s, AffineExpr::zero()), &[]);
        b.load(MemRef::affine(g, AffineExpr::zero()), &[]);
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        run(&r, &mut m);
        // arg vs arg: MAY (despite provenance — that is Stage 2's job).
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::May)
        );
        // arg vs stack: NO.
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 2
            }),
            Some(AliasLabel::No)
        );
        // arg vs global: MAY.
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 3
            }),
            Some(AliasLabel::May)
        );
    }

    #[test]
    fn unknown_pointers() {
        let mut b = RegionBuilder::new("t");
        let u0 = b.unknown_ptr();
        let u1 = b.unknown_ptr();
        let s = b.stack("local", 64);
        b.store(MemRef::unknown(u0, 0), &[]);
        b.load(MemRef::unknown(u0, 0), &[]);
        b.load(MemRef::unknown(u0, 32), &[]);
        b.load(MemRef::unknown(u1, 0), &[]);
        b.store(MemRef::affine(s, AffineExpr::zero()), &[]);
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        run(&r, &mut m);
        // Same unknown source, same offset: MUST exact.
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::MustExact)
        );
        // Same source, far offset: NO.
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 2
            }),
            Some(AliasLabel::No)
        );
        // Different unknown sources: MAY.
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 3
            }),
            Some(AliasLabel::May)
        );
        // Unknown vs non-escaping stack slot: NO.
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 4
            }),
            Some(AliasLabel::No)
        );
        assert_eq!(
            m.get(Pair {
                older: 3,
                younger: 4
            }),
            Some(AliasLabel::No)
        );
    }

    #[test]
    fn multidim_symbolic_stride_is_may_in_stage1() {
        use nachos_ir::{ParamInfo, ScaledParam, Subscript};
        let mut b = RegionBuilder::new("t");
        let i = b.enclosing_loop(LoopInfo::range("i", 0, 8));
        let n = b.param(ParamInfo::at_least("n", 1));
        let g = b.global("A", 4096, 0);
        let sub = |idx: AffineExpr| Subscript {
            index: idx,
            stride: ScaledParam::symbolic(8, n),
            extent: None,
        };
        b.store(MemRef::multi_dim(g, vec![sub(AffineExpr::var(i))]), &[]);
        b.load(
            MemRef::multi_dim(g, vec![sub(AffineExpr::var(i).plus(1))]),
            &[],
        );
        let r = b.finish();
        let mut m = AliasMatrix::new(&r);
        run(&r, &mut m);
        assert_eq!(
            m.get(Pair {
                older: 0,
                younger: 1
            }),
            Some(AliasLabel::May)
        );
    }

    #[test]
    fn classify_pair_direct() {
        let mut b = RegionBuilder::new("t");
        let g = b.global("g", 64, 0);
        let r = b.finish();
        let a = MemRef::affine(g, AffineExpr::zero());
        let c = MemRef::affine(g, AffineExpr::constant_expr(16));
        assert_eq!(classify_pair(&r, &bx(), &a, &c), AliasLabel::No);
        assert_eq!(classify_pair(&r, &bx(), &a, &a), AliasLabel::MustExact);
    }
}
