//! The OPT-LSQ model: banked, address-partitioned queues with a bloom
//! filter front-end and in-order allocation/retirement.
//!
//! This is the baseline the paper evaluates against (§VIII-C): a
//! late-binding, address-partitioned LSQ [Sethumadhavan et al.] whose CAM
//! searches are filtered by a counting bloom filter [same §]. Entries
//! *allocate in program order* (the compiler communicates explicit 8-bit
//! ages, like TRIPS), bind to a bank when their address resolves, search
//! the relevant queue(s) before issuing to the cache, and retire in order.
//!
//! The model is deliberately mechanism-level: the simulator in the `nachos`
//! crate drives `allocate → bind_address → search → complete → retire`
//! per memory operation and converts the recorded events into energy.

use crate::bloom::{BloomStats, CountingBloom};

/// Geometry and bandwidth of the OPT-LSQ (paper Figure 3: 2 ports,
/// 48 entries/bank, 2–8 banks).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LsqConfig {
    /// Number of address-partitioned banks.
    pub banks: usize,
    /// Capacity of each bank.
    pub entries_per_bank: usize,
    /// Memory operations that can allocate per cycle (ports).
    pub alloc_per_cycle: u32,
    /// In-order retirements per cycle.
    pub retire_per_cycle: u32,
    /// Extra cycles the LSQ pipeline adds to every load's path
    /// (the paper observes a 2-cycle load-to-use penalty on cache hits).
    pub load_to_use_penalty: u64,
}

impl Default for LsqConfig {
    fn default() -> Self {
        Self {
            // Eight banks (the top of the paper's 2-8 range) give 384
            // entries — enough for any 256-op region, so bank capacity
            // manifests as occupancy pressure rather than deadlock-prone
            // structural stalls (see `LsqStats::bank_overflows`).
            banks: 8,
            entries_per_bank: 48,
            alloc_per_cycle: 2,
            retire_per_cycle: 2,
            load_to_use_penalty: 2,
        }
    }
}

/// Event counters converted to energy by the simulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LsqStats {
    /// Entries allocated.
    pub allocs: u64,
    /// Address bindings that found their bank already at capacity. A
    /// late-binding LSQ cannot stall these without risking deadlock
    /// (younger ops can fill a bank before an older op binds while
    /// in-order retirement waits on the older op), so the model admits
    /// them and reports the pressure here instead.
    pub bank_overflows: u64,
    /// CAM searches performed by loads (store-queue search).
    pub cam_load_searches: u64,
    /// CAM searches performed by stores (both-queue search).
    pub cam_store_searches: u64,
    /// Store-to-load forwards performed.
    pub forwards: u64,
}

/// Result of a load's disambiguation search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoadSearch {
    /// No conflicting older store: the load may issue to the cache.
    CanIssue,
    /// An exact-match older store with its data ready: forward. Carries the
    /// store's age.
    Forward(u32),
    /// Blocked: some older store's address is still unknown (ambiguous),
    /// or an overlapping older store has not yet produced/committed its
    /// value. Carries the blocking store's age.
    Blocked(u32),
}

/// Result of a store's disambiguation search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreSearch {
    /// No conflicting older operation: the store may issue.
    CanIssue,
    /// Blocked by the operation with the carried age (unknown address or
    /// overlapping and incomplete).
    Blocked(u32),
}

#[derive(Clone, Debug)]
struct Entry {
    is_store: bool,
    addr: Option<(u64, u8)>,
    bank: Option<usize>,
    /// Store value produced (stores only).
    data_ready: bool,
    /// Access performed (cache response received / store committed).
    completed: bool,
    retired: bool,
    /// Address deposited in the bloom filter.
    deposited: bool,
    /// First search already counted for energy.
    searched: bool,
}

/// The OPT-LSQ. Ages are the region's program-order memory-operation
/// indices for the current invocation; invocations are block-atomic, so
/// the queue drains between invocations ([`Lsq::begin_invocation`]).
#[derive(Clone, Debug)]
pub struct Lsq {
    config: LsqConfig,
    entries: Vec<Entry>,
    next_alloc: u32,
    next_retire: u32,
    bank_load: Vec<usize>,
    /// Bloom over in-flight store addresses (queried by loads).
    sq_bloom: CountingBloom,
    /// Bloom over in-flight load addresses (queried by stores).
    lq_bloom: CountingBloom,
    stats: LsqStats,
    cycle: u64,
    allocs_this_cycle: u32,
    retires_this_cycle: u32,
}

impl Lsq {
    /// Creates an LSQ.
    ///
    /// # Panics
    ///
    /// Panics if any geometry/bandwidth parameter is zero.
    #[must_use]
    pub fn new(config: LsqConfig) -> Self {
        assert!(
            config.banks > 0
                && config.entries_per_bank > 0
                && config.alloc_per_cycle > 0
                && config.retire_per_cycle > 0,
            "degenerate LSQ configuration"
        );
        Self {
            config,
            entries: Vec::new(),
            next_alloc: 0,
            next_retire: 0,
            bank_load: vec![0; config.banks],
            sq_bloom: CountingBloom::lsq_default(),
            lq_bloom: CountingBloom::lsq_default(),
            stats: LsqStats::default(),
            cycle: 0,
            allocs_this_cycle: 0,
            retires_this_cycle: 0,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &LsqConfig {
        &self.config
    }

    /// Starts a new region invocation with the given per-age op kinds
    /// (`true` = store). The queue must have drained (all entries retired).
    ///
    /// # Panics
    ///
    /// Panics if un-retired entries remain.
    pub fn begin_invocation(&mut self, is_store: &[bool]) {
        assert!(
            self.entries.iter().all(|e| e.retired),
            "LSQ must drain between invocations"
        );
        // In place: block-atomic invocations re-fill the same entry
        // vector every time, so keep its capacity across invocations
        // (and, via `reset`, across pooled runs).
        self.entries.clear();
        self.entries.extend(is_store.iter().map(|&s| Entry {
            is_store: s,
            addr: None,
            bank: None,
            data_ready: false,
            completed: false,
            retired: false,
            deposited: false,
            searched: false,
        }));
        self.next_alloc = 0;
        self.next_retire = 0;
        self.bank_load.fill(0);
        self.sq_bloom.clear();
        self.lq_bloom.clear();
    }

    /// Returns the LSQ to its freshly-constructed state — entries emptied
    /// (capacity kept), blooms and all statistics zeroed — so a pooled
    /// instance can be reused by a new simulation run.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.next_alloc = 0;
        self.next_retire = 0;
        self.bank_load.fill(0);
        self.sq_bloom.clear();
        self.sq_bloom.reset_stats();
        self.lq_bloom.clear();
        self.lq_bloom.reset_stats();
        self.stats = LsqStats::default();
        self.cycle = 0;
        self.allocs_this_cycle = 0;
        self.retires_this_cycle = 0;
    }

    fn roll_cycle(&mut self, cycle: u64) {
        if cycle != self.cycle {
            self.cycle = cycle;
            self.allocs_this_cycle = 0;
            self.retires_this_cycle = 0;
        }
    }

    /// Attempts to allocate the next program-order entry at `cycle`.
    /// Returns the allocated age, or `None` when allocation bandwidth for
    /// this cycle is exhausted or all entries are allocated.
    pub fn allocate_next(&mut self, cycle: u64) -> Option<u32> {
        self.roll_cycle(cycle);
        if self.allocs_this_cycle >= self.config.alloc_per_cycle
            || (self.next_alloc as usize) >= self.entries.len()
        {
            return None;
        }
        let age = self.next_alloc;
        self.next_alloc += 1;
        self.allocs_this_cycle += 1;
        self.stats.allocs += 1;
        Some(age)
    }

    /// `true` once `age` has been allocated this invocation.
    #[must_use]
    pub fn is_allocated(&self, age: u32) -> bool {
        age < self.next_alloc
    }

    /// Binds a resolved address to an allocated entry, claiming a slot in
    /// the address-selected bank. Always succeeds; a bank above capacity
    /// is recorded in [`LsqStats::bank_overflows`] (see that field for
    /// why a structural stall would deadlock a late-binding queue).
    ///
    /// # Panics
    ///
    /// Panics if `age` is unallocated or already bound.
    pub fn bind_address(&mut self, age: u32, addr: u64, size: u8) {
        assert!(self.is_allocated(age), "bind before allocate");
        let bank = (addr >> 6) as usize % self.config.banks;
        let e = &mut self.entries[age as usize];
        assert!(e.addr.is_none(), "address already bound");
        if self.bank_load[bank] >= self.config.entries_per_bank {
            self.stats.bank_overflows += 1;
        }
        self.bank_load[bank] += 1;
        e.addr = Some((addr, size));
        e.bank = Some(bank);
    }

    fn overlaps(a: (u64, u8), b: (u64, u8)) -> bool {
        a.0 < b.0 + u64::from(b.1) && b.0 < a.0 + u64::from(a.1)
    }

    fn count_first_search(&mut self, age: u32) -> bool {
        let first = !self.entries[age as usize].searched;
        self.entries[age as usize].searched = true;
        first
    }

    fn deposit(&mut self, age: u32) {
        let e = &mut self.entries[age as usize];
        if !e.deposited {
            if let Some((addr, _)) = e.addr {
                let key = addr >> 3;
                if e.is_store {
                    self.sq_bloom.insert(key);
                } else {
                    self.lq_bloom.insert(key);
                }
                e.deposited = true;
            }
        }
    }

    /// Disambiguation search for a load whose address is bound. Searches
    /// the store queue for older conflicting stores.
    ///
    /// # Panics
    ///
    /// Panics if `age` is not a bound load.
    pub fn search_load(&mut self, age: u32) -> LoadSearch {
        let my = self.entries[age as usize].addr.expect("search before bind");
        assert!(!self.entries[age as usize].is_store, "load search on store");
        let first = self.count_first_search(age);
        if first {
            let bloom_hit = self.sq_bloom.query(my.0 >> 3);
            if bloom_hit {
                self.stats.cam_load_searches += 1;
            }
        }
        let result = self.scan_for_load(age, my);
        if !matches!(result, LoadSearch::Blocked(_)) {
            self.deposit(age);
            if matches!(result, LoadSearch::Forward(_)) {
                self.stats.forwards += 1;
            }
        }
        result
    }

    fn scan_for_load(&self, age: u32, my: (u64, u8)) -> LoadSearch {
        // Youngest older store that matters.
        for older in (0..age).rev() {
            let e = &self.entries[older as usize];
            if !e.is_store || e.retired {
                continue;
            }
            match e.addr {
                None => return LoadSearch::Blocked(older),
                Some(theirs) if Self::overlaps(my, theirs) => {
                    return if theirs == my && e.data_ready {
                        LoadSearch::Forward(older)
                    } else if e.completed {
                        LoadSearch::CanIssue
                    } else {
                        LoadSearch::Blocked(older)
                    };
                }
                Some(_) => {}
            }
        }
        LoadSearch::CanIssue
    }

    /// Disambiguation search for a store whose address is bound. Searches
    /// both queues for older conflicting operations.
    ///
    /// # Panics
    ///
    /// Panics if `age` is not a bound store.
    pub fn search_store(&mut self, age: u32) -> StoreSearch {
        let my = self.entries[age as usize].addr.expect("search before bind");
        assert!(self.entries[age as usize].is_store, "store search on load");
        let first = self.count_first_search(age);
        if first {
            let hit = self.sq_bloom.query(my.0 >> 3) | self.lq_bloom.query(my.0 >> 3);
            if hit {
                self.stats.cam_store_searches += 1;
            }
        }
        let result = self.scan_for_store(age, my);
        if result == StoreSearch::CanIssue {
            self.deposit(age);
        }
        result
    }

    fn scan_for_store(&self, age: u32, my: (u64, u8)) -> StoreSearch {
        for older in (0..age).rev() {
            let e = &self.entries[older as usize];
            if e.retired {
                continue;
            }
            match e.addr {
                None => return StoreSearch::Blocked(older),
                Some(theirs) if Self::overlaps(my, theirs) && !e.completed => {
                    return StoreSearch::Blocked(older);
                }
                Some(_) => {}
            }
        }
        StoreSearch::CanIssue
    }

    /// Marks a store's data operand as produced.
    pub fn mark_data_ready(&mut self, age: u32) {
        self.entries[age as usize].data_ready = true;
    }

    /// Marks an operation's memory access as performed.
    pub fn mark_completed(&mut self, age: u32) {
        self.entries[age as usize].completed = true;
    }

    /// Retires completed entries in program order (bandwidth-limited),
    /// releasing bank slots and bloom deposits. Returns how many retired.
    pub fn retire_ready(&mut self, cycle: u64) -> u32 {
        self.roll_cycle(cycle);
        let mut retired = 0;
        while (self.next_retire as usize) < self.entries.len()
            && self.retires_this_cycle < self.config.retire_per_cycle
        {
            let age = self.next_retire as usize;
            if !self.entries[age].completed {
                break;
            }
            let (deposited, is_store, addr) = {
                let e = &self.entries[age];
                (e.deposited, e.is_store, e.addr)
            };
            if deposited {
                let key = addr.expect("deposited implies bound").0 >> 3;
                if is_store {
                    self.sq_bloom.remove(key);
                } else {
                    self.lq_bloom.remove(key);
                }
            }
            if let Some(bank) = self.entries[age].bank {
                self.bank_load[bank] -= 1;
            }
            self.entries[age].retired = true;
            self.next_retire += 1;
            self.retires_this_cycle += 1;
            retired += 1;
        }
        retired
    }

    /// `true` once every entry of the current invocation has retired
    /// (also true before any invocation begins).
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.next_retire as usize == self.entries.len()
    }

    /// Event counters.
    #[must_use]
    pub fn stats(&self) -> LsqStats {
        self.stats
    }

    /// Combined bloom-filter statistics (both queues' filters).
    #[must_use]
    pub fn bloom_stats(&self) -> BloomStats {
        let (s, l) = (self.sq_bloom.stats(), self.lq_bloom.stats());
        BloomStats {
            queries: s.queries + l.queries,
            hits: s.hits + l.hits,
        }
    }

    /// Total CAM searches.
    #[must_use]
    pub fn cam_searches(&self) -> u64 {
        self.stats.cam_load_searches + self.stats.cam_store_searches
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lsq_for(kinds: &[bool]) -> Lsq {
        let mut l = Lsq::new(LsqConfig::default());
        l.begin_invocation(kinds);
        l
    }

    fn alloc_all(l: &mut Lsq, n: usize) {
        let mut cycle = 0;
        let mut done = 0;
        while done < n {
            if l.allocate_next(cycle).is_some() {
                done += 1;
            } else {
                cycle += 1;
            }
        }
    }

    #[test]
    fn allocation_is_in_order_and_bandwidth_limited() {
        let mut l = lsq_for(&[false; 5]);
        assert_eq!(l.allocate_next(0), Some(0));
        assert_eq!(l.allocate_next(0), Some(1));
        assert_eq!(l.allocate_next(0), None, "2 ports per cycle");
        assert_eq!(l.allocate_next(1), Some(2));
        assert!(l.is_allocated(2));
        assert!(!l.is_allocated(3));
    }

    #[test]
    fn independent_load_can_issue() {
        let mut l = lsq_for(&[true, false]);
        alloc_all(&mut l, 2);
        l.bind_address(0, 0x100, 8);
        l.bind_address(1, 0x200, 8);
        assert_eq!(l.search_load(1), LoadSearch::CanIssue);
    }

    #[test]
    fn load_blocked_by_unknown_store_address() {
        let mut l = lsq_for(&[true, false]);
        alloc_all(&mut l, 2);
        l.bind_address(1, 0x200, 8);
        assert_eq!(l.search_load(1), LoadSearch::Blocked(0));
    }

    #[test]
    fn exact_store_forwards_when_data_ready() {
        let mut l = lsq_for(&[true, false]);
        alloc_all(&mut l, 2);
        l.bind_address(0, 0x100, 8);
        l.bind_address(1, 0x100, 8);
        assert_eq!(l.search_load(1), LoadSearch::Blocked(0));
        l.mark_data_ready(0);
        assert_eq!(l.search_load(1), LoadSearch::Forward(0));
        assert_eq!(l.stats().forwards, 1);
    }

    #[test]
    fn partial_overlap_waits_for_completion() {
        let mut l = lsq_for(&[true, false]);
        alloc_all(&mut l, 2);
        l.bind_address(0, 0x100, 8);
        l.bind_address(1, 0x104, 4);
        l.mark_data_ready(0);
        assert_eq!(l.search_load(1), LoadSearch::Blocked(0));
        l.mark_completed(0);
        assert_eq!(l.search_load(1), LoadSearch::CanIssue);
    }

    #[test]
    fn store_blocked_by_older_conflicting_load() {
        let mut l = lsq_for(&[false, true]);
        alloc_all(&mut l, 2);
        l.bind_address(0, 0x100, 8);
        l.bind_address(1, 0x100, 8);
        // Older load must be deposited/visible: search it first.
        assert_eq!(l.search_load(0), LoadSearch::CanIssue);
        assert_eq!(l.search_store(1), StoreSearch::Blocked(0));
        l.mark_completed(0);
        assert_eq!(l.search_store(1), StoreSearch::CanIssue);
    }

    #[test]
    fn energy_counted_once_per_op() {
        let mut l = lsq_for(&[true, false]);
        alloc_all(&mut l, 2);
        l.bind_address(0, 0x100, 8);
        l.bind_address(1, 0x100, 8);
        let _ = l.search_load(1);
        let _ = l.search_load(1);
        let _ = l.search_load(1);
        // One bloom query from the load (plus none from the store yet).
        assert_eq!(l.bloom_stats().queries, 1);
    }

    #[test]
    fn disjoint_addresses_yield_zero_bloom_hits() {
        let mut l = lsq_for(&[true, false, true, false]);
        alloc_all(&mut l, 4);
        for (age, addr) in [(0u32, 0x1000u64), (1, 0x2000), (2, 0x3000), (3, 0x4000)] {
            l.bind_address(age, addr, 8);
        }
        assert_eq!(l.search_store(0), StoreSearch::CanIssue);
        assert_eq!(l.search_load(1), LoadSearch::CanIssue);
        assert_eq!(l.search_store(2), StoreSearch::CanIssue);
        assert_eq!(l.search_load(3), LoadSearch::CanIssue);
        assert_eq!(l.bloom_stats().hits, 0);
        assert_eq!(l.cam_searches(), 0, "bloom filtered all CAM searches");
    }

    #[test]
    fn conflicting_addresses_pay_cam() {
        let mut l = lsq_for(&[true, false]);
        alloc_all(&mut l, 2);
        l.bind_address(0, 0x100, 8);
        l.bind_address(1, 0x100, 8);
        assert_eq!(l.search_store(0), StoreSearch::CanIssue);
        l.mark_data_ready(0);
        let _ = l.search_load(1);
        assert_eq!(l.stats().cam_load_searches, 1);
    }

    #[test]
    fn retirement_is_in_order_and_overflow_counted() {
        let mut l = Lsq::new(LsqConfig {
            banks: 1,
            entries_per_bank: 2,
            ..LsqConfig::default()
        });
        l.begin_invocation(&[false, false, false]);
        alloc_all(&mut l, 3);
        l.bind_address(0, 0x000, 8);
        l.bind_address(1, 0x040, 8);
        assert_eq!(l.stats().bank_overflows, 0);
        l.bind_address(2, 0x080, 8);
        assert_eq!(l.stats().bank_overflows, 1, "third binding overflows");
        l.mark_completed(1);
        assert_eq!(l.retire_ready(10), 0, "age 0 incomplete blocks retire");
        l.mark_completed(0);
        assert_eq!(l.retire_ready(11), 2);
        l.mark_completed(2);
        assert_eq!(l.retire_ready(12), 1);
        assert!(l.is_drained());
    }

    #[test]
    fn begin_invocation_requires_drain() {
        let mut l = lsq_for(&[false]);
        alloc_all(&mut l, 1);
        l.bind_address(0, 0, 8);
        l.mark_completed(0);
        l.retire_ready(0);
        // Drained: OK to restart.
        l.begin_invocation(&[true]);
        assert_eq!(l.stats().allocs, 1);
    }

    #[test]
    #[should_panic(expected = "drain")]
    fn begin_invocation_panics_when_not_drained() {
        let mut l = lsq_for(&[false]);
        alloc_all(&mut l, 1);
        l.begin_invocation(&[false]);
    }
}
