//! # nachos-lsq — the OPT-LSQ baseline
//!
//! The optimized load-store queue that *NACHOS* (HPCA 2018) compares
//! against (§VIII-C): an address-partitioned, late-binding LSQ whose CAM
//! searches are filtered by a counting bloom filter, with program-order
//! allocation and retirement and a fixed load-to-use pipeline penalty.
//!
//! The crate exposes the mechanisms ([`Lsq`], [`CountingBloom`]); the
//! simulator in the `nachos` crate drives the
//! `allocate → bind_address → search → complete → retire` protocol and
//! converts the recorded events into energy using the paper's per-event
//! costs (loads 2500 fJ, stores 3500 fJ per CAM search).
//!
//! ```
//! use nachos_lsq::{LoadSearch, Lsq, LsqConfig};
//!
//! let mut lsq = Lsq::new(LsqConfig::default());
//! lsq.begin_invocation(&[true, false]); // one store, one load
//! lsq.allocate_next(0);
//! lsq.allocate_next(0);
//! lsq.bind_address(0, 0x100, 8);
//! lsq.bind_address(1, 0x100, 8);
//! lsq.mark_data_ready(0);
//! assert_eq!(lsq.search_load(1), LoadSearch::Forward(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bloom;
mod model;

pub use bloom::{BloomStats, CountingBloom};
pub use model::{LoadSearch, Lsq, LsqConfig, LsqStats, StoreSearch};
