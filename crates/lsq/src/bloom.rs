//! A counting bloom filter over in-flight memory addresses.
//!
//! OPT-LSQ (paper §VIII-C) places a bloom filter in front of the CAM: every
//! search first probes the filter, and only filter hits pay for a CAM
//! search. The filter is *counting* so that entries can be removed when
//! memory operations retire. False positives occur naturally under high
//! occupancy — the paper's Figure 18 groups workloads by their bloom hit
//! rate (0%, 0–10%, 10–20%, 20%+).

/// Counting bloom filter keyed by cache-line-granular addresses.
#[derive(Clone, Debug)]
pub struct CountingBloom {
    counters: Vec<u16>,
    num_hashes: u32,
    stats: BloomStats,
}

/// Query statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BloomStats {
    /// Total queries.
    pub queries: u64,
    /// Queries that reported "possibly present".
    pub hits: u64,
}

impl BloomStats {
    /// Hit rate in percent (0 when never queried).
    #[must_use]
    pub fn hit_pct(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            100.0 * self.hits as f64 / self.queries as f64
        }
    }
}

impl CountingBloom {
    /// Creates a filter with `bits` counters and `num_hashes` hash
    /// functions.
    ///
    /// # Panics
    ///
    /// Panics if `bits` or `num_hashes` is zero.
    #[must_use]
    pub fn new(bits: usize, num_hashes: u32) -> Self {
        assert!(bits > 0 && num_hashes > 0, "degenerate bloom geometry");
        Self {
            counters: vec![0; bits],
            num_hashes,
            stats: BloomStats::default(),
        }
    }

    /// A small filter representative of an LSQ front-end (256 counters,
    /// 2 hash functions).
    #[must_use]
    pub fn lsq_default() -> Self {
        Self::new(256, 2)
    }

    fn indices(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        // SplitMix64-style remixing per hash function.
        (0..self.num_hashes).map(move |i| {
            let mut x = key ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(u64::from(i) + 1));
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            (x % self.counters.len() as u64) as usize
        })
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: u64) {
        let idxs: Vec<usize> = self.indices(key).collect();
        for i in idxs {
            self.counters[i] = self.counters[i].saturating_add(1);
        }
    }

    /// Removes a previously-inserted key.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the key was never inserted, which would
    /// corrupt the filter.
    pub fn remove(&mut self, key: u64) {
        let idxs: Vec<usize> = self.indices(key).collect();
        for i in idxs {
            debug_assert!(self.counters[i] > 0, "bloom underflow");
            self.counters[i] = self.counters[i].saturating_sub(1);
        }
    }

    /// Queries the filter; `true` means "possibly present" and implies a
    /// CAM search is needed. Counted in [`BloomStats`].
    pub fn query(&mut self, key: u64) -> bool {
        self.stats.queries += 1;
        let hit = self.indices(key).all(|i| self.counters[i] > 0);
        if hit {
            self.stats.hits += 1;
        }
        hit
    }

    /// Query without counting statistics (for tests/diagnostics).
    #[must_use]
    pub fn contains(&self, key: u64) -> bool {
        self.indices(key).all(|i| self.counters[i] > 0)
    }

    /// Accumulated query statistics.
    #[must_use]
    pub fn stats(&self) -> BloomStats {
        self.stats
    }

    /// Clears contents (statistics are retained).
    pub fn clear(&mut self) {
        self.counters.fill(0);
    }

    /// Zeroes the query statistics (contents are retained). Paired with
    /// [`CountingBloom::clear`] when a pooled filter starts a new run.
    pub fn reset_stats(&mut self) {
        self.stats = BloomStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_query_remove() {
        let mut b = CountingBloom::lsq_default();
        assert!(!b.query(42));
        b.insert(42);
        assert!(b.query(42));
        b.remove(42);
        assert!(!b.query(42));
        assert_eq!(b.stats().queries, 3);
        assert_eq!(b.stats().hits, 1);
    }

    #[test]
    fn counting_supports_duplicates() {
        let mut b = CountingBloom::lsq_default();
        b.insert(7);
        b.insert(7);
        b.remove(7);
        assert!(b.contains(7), "one copy still present");
        b.remove(7);
        assert!(!b.contains(7));
    }

    #[test]
    fn empty_filter_never_hits() {
        let mut b = CountingBloom::new(64, 3);
        for k in 0..100 {
            assert!(!b.query(k));
        }
        assert_eq!(b.stats().hit_pct(), 0.0);
    }

    #[test]
    fn false_positives_under_load() {
        // Saturate a tiny filter; unseen keys should collide.
        let mut b = CountingBloom::new(8, 2);
        for k in 0..64 {
            b.insert(k);
        }
        assert!(
            b.contains(1_000_003),
            "tiny saturated filter false-positives"
        );
    }

    #[test]
    fn clear_keeps_stats() {
        let mut b = CountingBloom::lsq_default();
        b.insert(1);
        b.query(1);
        b.clear();
        assert!(!b.contains(1));
        assert_eq!(b.stats().queries, 1);
    }

    #[test]
    fn hit_pct() {
        let mut b = CountingBloom::lsq_default();
        b.insert(5);
        b.query(5);
        b.query(6);
        b.query(7);
        b.query(8);
        assert!((b.stats().hit_pct() - 25.0).abs() < 1e-9);
    }
}
