//! Offline stand-in for the `criterion` crate.
//!
//! The build environment for this repository cannot reach a crate
//! registry, so the workspace vendors the API subset its benches use:
//! [`Criterion::benchmark_group`], `bench_function`, `Bencher::iter` /
//! `iter_with_setup`, and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Instead of upstream's statistical analysis it times a fixed
//! batch after a short warm-up and prints mean wall-clock time per
//! iteration — adequate for eyeballing relative cost, not for rigorous
//! statistics.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs one benchmark's measured routine.
pub struct Bencher {
    iters: u64,
    /// Mean nanoseconds per iteration of the last measurement.
    last_ns_per_iter: f64,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Self {
            iters,
            last_ns_per_iter: 0.0,
        }
    }

    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..self.iters.min(8) {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.record(start.elapsed());
    }

    /// Times `routine` on fresh input from `setup`; setup time excluded.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.record(total);
    }

    fn record(&mut self, total: Duration) {
        self.last_ns_per_iter = total.as_nanos() as f64 / self.iters.max(1) as f64;
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.criterion.iters);
        f(&mut bencher);
        println!(
            "{}/{:<32} {:>12.1} ns/iter",
            self.name, id, bencher.last_ns_per_iter
        );
        self
    }

    /// Ends the group (upstream flushes reports here; the stand-in prints
    /// eagerly, so this only marks the group's end).
    pub fn finish(&mut self) {}
}

/// Benchmark-runner entry point.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { iters: 64 }
    }
}

impl Criterion {
    /// Upstream parses CLI filters/options here; the stand-in accepts and
    /// ignores them so `criterion_main!`-generated code keeps compiling.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            criterion: self,
        }
    }

    /// Registers and immediately runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs_routines() {
        let mut c = Criterion { iters: 4 };
        let mut runs = 0u32;
        {
            let mut g = c.benchmark_group("t");
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert!(runs >= 4);

        let mut setup_calls = 0u32;
        c.benchmark_group("t2").bench_function("setup", |b| {
            b.iter_with_setup(
                || {
                    setup_calls += 1;
                    7u64
                },
                |x| x * 2,
            )
        });
        assert_eq!(setup_calls, 4);
    }
}
