//! Quickstart: build an acceleration region, compile it with NACHOS-SW,
//! and simulate it under all three disambiguation backends.
//!
//! Run with `cargo run --release --example quickstart`.

use nachos::{run_all_backends, EnergyModel, SimConfig};
use nachos_alias::{analyze, StageConfig};
use nachos_ir::{AffineExpr, Binding, IntOp, LoopInfo, MemRef, Provenance, RegionBuilder};

fn main() {
    // ------------------------------------------------------------------
    // 1. Describe an acceleration region: the body of
    //        for i in 0..64 { b[i] = f(a[i]); *p += g(a[i]); }
    //    where `a` and `b` are distinct caller objects passed as pointer
    //    arguments and `p` is a pointer the compiler cannot trace.
    // ------------------------------------------------------------------
    let mut b = RegionBuilder::new("quickstart");
    let i = b.enclosing_loop(LoopInfo::range("i", 0, 64));
    let arr_a = b.arg(0, Provenance::Object(1));
    let arr_b = b.arg(1, Provenance::Object(2));
    let p = b.unknown_ptr();

    let elem = |arr, iv: AffineExpr| MemRef::affine(arr, iv.scaled(8));
    let ld = b.load(elem(arr_a, AffineExpr::var(i)), &[]);
    let f = b.int_op(IntOp::Mul, &[ld]);
    b.store(elem(arr_b, AffineExpr::var(i)), &[f]);
    let g = b.int_op(IntOp::Add, &[ld]);
    b.store(MemRef::unknown(p, 0), &[g]);
    let region = b.finish();

    // ------------------------------------------------------------------
    // 2. Ask the compiler what it can prove.
    // ------------------------------------------------------------------
    let analysis = analyze(&region, StageConfig::full());
    println!("region `{}`:", region.name);
    println!(
        "  {} memory operations, {} tracked pairs",
        analysis.report.num_mem_ops, analysis.report.num_pairs
    );
    println!(
        "  after stage 1:  {} NO / {} MAY / {} MUST",
        analysis.report.after_stage1.no,
        analysis.report.after_stage1.may,
        analysis.report.after_stage1.must
    );
    println!(
        "  after stage 2:  {} NO / {} MAY / {} MUST  (provenance traced)",
        analysis.report.after_stage2.no,
        analysis.report.after_stage2.may,
        analysis.report.after_stage2.must
    );
    println!(
        "  enforced MDEs: {} order, {} forward, {} may",
        analysis.plan.order.len(),
        analysis.plan.forward.len(),
        analysis.plan.may.len()
    );

    // ------------------------------------------------------------------
    // 3. Bind concrete addresses and simulate.
    // ------------------------------------------------------------------
    let binding = Binding {
        base_addrs: vec![0x10_0000, 0x20_0000],
        params: Vec::new(),
        unknowns: vec![nachos_ir::UnknownPattern::Fixed(0x30_0000)],
    };
    let config = SimConfig::default().with_invocations(64);
    let energy = EnergyModel::default();
    let runs = run_all_backends(&region, &binding, &config, &energy)
        .expect("region fits the paper's 32x32 grid");

    println!();
    println!(
        "{:<10} {:>10} {:>14} {:>12}",
        "backend", "cycles", "energy (nJ)", "MAY checks"
    );
    for run in &runs {
        println!(
            "{:<10} {:>10} {:>14.1} {:>12}",
            run.sim.backend.to_string(),
            run.sim.cycles,
            run.sim.energy.total() / 1e6,
            run.sim.events.may_checks
        );
    }
    println!();
    println!(
        "NACHOS resolves the two array streams at compile time (stage 2) and \
         checks only the untraceable store at run time — the pay-as-you-go \
         approach of the paper."
    );
}
