//! Design-space exploration: how NACHOS's comparator provisioning and the
//! OPT-LSQ's geometry trade off on a fan-in-heavy workload (the sar-pfa
//! pattern of Figure 14 and §VIII-A's contention discussion).
//!
//! Run with `cargo run --release --example design_space`.

use nachos::{run_backend, Backend, EnergyModel, SimConfig};
use nachos_workloads::{by_name, generate};

fn main() {
    let spec = by_name("sar-pfa.").expect("Table II row");
    let w = generate(&spec);
    let energy = EnergyModel::default();

    println!(
        "benchmark: {} ({} memory operations)",
        spec.name, spec.mem_ops
    );
    println!();

    // 1. Sweep comparators per `==?` site: the arbiter serializes checks,
    //    so fan-in-heavy sites benefit from extra comparators.
    println!("comparators/site sweep (NACHOS):");
    println!(
        "{:>18} {:>12} {:>14}",
        "comparators", "cycles", "MAY checks"
    );
    for comparators in [1u32, 2, 4, 8] {
        let config = SimConfig {
            comparators_per_site: comparators,
            ..SimConfig::default()
        }
        .with_invocations(32);
        let run = run_backend(&w.region, &w.binding, Backend::Nachos, &config, &energy)
            .expect("simulate");
        println!(
            "{comparators:>18} {:>12} {:>14}",
            run.sim.cycles, run.sim.events.may_checks
        );
    }

    // 2. Sweep LSQ allocation bandwidth: the in-order front end is the
    //    baseline's scaling limit (§VIII-C Challenge 2).
    println!();
    println!("LSQ allocation-bandwidth sweep (OPT-LSQ):");
    println!(
        "{:>18} {:>12} {:>14}",
        "allocs/cycle", "cycles", "CAM searches"
    );
    for apc in [1u32, 2, 4, 8] {
        let mut config = SimConfig::default().with_invocations(32);
        config.lsq.alloc_per_cycle = apc;
        let run = run_backend(&w.region, &w.binding, Backend::OptLsq, &config, &energy)
            .expect("simulate");
        println!(
            "{apc:>18} {:>12} {:>14}",
            run.sim.cycles,
            run.sim.events.lsq_cam_loads + run.sim.events.lsq_cam_stores
        );
    }

    println!();
    println!(
        "NACHOS scales by adding cheap comparators exactly where fan-in \
         concentrates; the LSQ must widen its entire in-order front end."
    );
}
