//! The equake/lbm scenario: a multidimensional stencil whose array extents
//! are only known at run time. LLVM-style analyses (stage 1) cannot
//! linearize symbolic strides and leave every pair MAY; the polyhedral
//! stage 4 proves the row accesses independent — turning a fully
//! serialized NACHOS-SW schedule into a parallel one with zero runtime
//! checks.
//!
//! Run with `cargo run --release --example stencil_polyhedral`.

use nachos::{pct_slowdown, run_backend, Backend, EnergyModel, SimConfig};
use nachos_alias::{analyze, StageConfig};
use nachos_ir::{
    AffineExpr, Binding, FpOp, LoopInfo, MemRef, ParamInfo, RegionBuilder, ScaledParam, Subscript,
};

fn main() {
    // w[i][lane] += w[i+1][lane] * c   over a `double w[rows][n]` array
    // with run-time extent `n` — one lane per column, eight lanes.
    let mut b = RegionBuilder::new("stencil");
    let i = b.enclosing_loop(LoopInfo::range("i", 0, 128));
    let n = b.param(ParamInfo::at_least("n", 8));
    let w = b.global("w", 1 << 22, 0);
    let c = b.constant(0x3fe0_0000_0000_0000);

    let cell = |row: AffineExpr, lane: i64| {
        MemRef::multi_dim(
            w,
            vec![
                Subscript {
                    index: row,
                    stride: ScaledParam::symbolic(8, n),
                    extent: None,
                },
                Subscript {
                    index: AffineExpr::constant_expr(lane),
                    stride: ScaledParam::constant(8),
                    extent: Some(ScaledParam::symbolic(1, n)),
                },
            ],
        )
    };

    for lane in 0..8 {
        let below = b.load(cell(AffineExpr::var(i).plus(1), lane), &[]);
        let cur = b.load(cell(AffineExpr::var(i), lane), &[]);
        let scaled = b.fp_op(FpOp::Mul, &[below, c]);
        let sum = b.fp_op(FpOp::Add, &[cur, scaled]);
        b.store(cell(AffineExpr::var(i), lane), &[sum]);
    }
    let region = b.finish();

    // Compare the compiler with and without the polyhedral stage.
    let without = analyze(
        &region,
        StageConfig {
            stage2: true,
            stage3: true,
            stage4: false,
        },
    );
    let with = analyze(&region, StageConfig::full());
    println!("stencil over w[..][n] with symbolic n:");
    println!(
        "  stages 1-3 only:  {} MAY pairs survive -> NACHOS-SW serializes",
        without.report.final_labels.may
    );
    println!(
        "  with stage 4:     {} MAY pairs, {} refined to NO by the dependence test",
        with.report.final_labels.may, with.report.stage4_refined
    );

    // And measure what that buys at run time.
    let binding = Binding {
        base_addrs: vec![0x100_0000],
        params: vec![64],
        unknowns: Vec::new(),
    };
    let config = SimConfig::default().with_invocations(64);
    let energy = EnergyModel::default();
    let sw_without = nachos::run_backend_with_stages(
        &region,
        &binding,
        Backend::NachosSw,
        &config,
        &energy,
        StageConfig {
            stage2: true,
            stage3: true,
            stage4: false,
        },
    )
    .expect("simulate");
    let sw_with =
        run_backend(&region, &binding, Backend::NachosSw, &config, &energy).expect("simulate");
    println!();
    println!(
        "  NACHOS-SW cycles without stage 4: {}",
        sw_without.sim.cycles
    );
    println!("  NACHOS-SW cycles with stage 4:    {}", sw_with.sim.cycles);
    println!(
        "  polyhedral analysis speeds the software-only schedule up by {:.0}%",
        -pct_slowdown(sw_with.sim.cycles, sw_without.sim.cycles)
    );
}
