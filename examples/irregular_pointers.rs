//! The pathological case the paper motivates NACHOS with: one ambiguous
//! store near the top of a region serializes every younger memory
//! operation under a software-only scheme, even though it almost never
//! actually conflicts. The hardware `==?` check releases the parallelism.
//!
//! Run with `cargo run --release --example irregular_pointers`.

use nachos::{pct_slowdown, run_all_backends, EnergyModel, SimConfig};
use nachos_ir::{AffineExpr, Binding, IntOp, LoopInfo, MemRef, RegionBuilder, UnknownPattern};

fn main() {
    // One store through an untraceable pointer, then eight independent
    // array streams the compiler proves disjoint from each other — but
    // not from the store.
    let mut b = RegionBuilder::new("irregular");
    let i = b.enclosing_loop(LoopInfo::range("i", 0, 64));
    let p = b.unknown_ptr();
    let x = b.input();
    b.store(MemRef::unknown(p, 0), &[x]);
    for lane in 0..8u32 {
        let g = b.global(&format!("a{lane}"), 1 << 16, lane);
        let ld = b.load(MemRef::affine(g, AffineExpr::var(i).scaled(64)), &[]);
        b.int_op(IntOp::Mul, &[ld]);
    }
    let region = b.finish();

    // The untraceable pointer lands in its own arena and never actually
    // collides with the arrays.
    let binding = Binding {
        base_addrs: (0..8).map(|k| 0x10_0000 + k * 0x2_0000).collect(),
        params: Vec::new(),
        unknowns: vec![UnknownPattern::Scatter {
            seed: 7,
            lo: 0x4000_0000,
            hi: 0x4000_2000,
            align: 8,
        }],
    };
    let config = SimConfig::default().with_invocations(64);
    let runs =
        run_all_backends(&region, &binding, &config, &EnergyModel::default()).expect("simulate");
    let [lsq, sw, hw] = runs;

    println!("one MAY store above eight independent loads:");
    println!(
        "  OPT-LSQ   : {:>7} cycles (dynamic checks in the CAM)",
        lsq.sim.cycles
    );
    println!(
        "  NACHOS-SW : {:>7} cycles ({:+.0}% vs OPT-LSQ — every load waits)",
        sw.sim.cycles,
        pct_slowdown(sw.sim.cycles, lsq.sim.cycles)
    );
    println!(
        "  NACHOS    : {:>7} cycles ({:+.0}% vs OPT-LSQ, {} `==?` checks)",
        hw.sim.cycles,
        pct_slowdown(hw.sim.cycles, lsq.sim.cycles),
        hw.sim.events.may_checks
    );
    println!();
    println!(
        "NACHOS-SW must serialize on compiler uncertainty; NACHOS checks the \
         addresses in hardware and lets the independent loads proceed."
    );
    assert!(
        sw.sim.cycles > hw.sim.cycles,
        "the checks must pay off here"
    );
}
