#!/usr/bin/env python3
"""Perf-smoke gate: fail when steady-state allocations per engine run
regress against the committed perf trajectory.

Usage: check_allocs.py COMMITTED_BENCH_JSON FRESH_BENCH_JSON

Compares the per-workload ``allocs_per_run`` column of a freshly measured
``nachos-bench-v2`` artifact against the committed ``BENCH_sweep.json``.
Allocation counts are deterministic for a given build (they come from a
counting global allocator, not from timing), so the tolerance only covers
allocator/platform skew, not real regressions.
"""

import json
import sys

TOLERANCE = 1.10  # 10% headroom for platform/allocator skew


def allocs(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return {
        w["name"]: w["allocs_per_run"]
        for w in doc.get("workloads", [])
        if "allocs_per_run" in w
    }


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} COMMITTED_BENCH_JSON FRESH_BENCH_JSON")
    committed = allocs(sys.argv[1])
    fresh = allocs(sys.argv[2])
    if not committed:
        sys.exit(f"{sys.argv[1]}: no allocs_per_run entries to gate against")
    failures = []
    for name, base in sorted(committed.items()):
        now = fresh.get(name)
        if now is None:
            failures.append(f"{name}: missing from fresh artifact")
        elif now > base * TOLERANCE:
            failures.append(f"{name}: {now} allocs/run vs committed {base}")
    for f in failures:
        print(f"ALLOC REGRESSION: {f}", file=sys.stderr)
    if failures:
        sys.exit(1)
    print(f"allocs/run within {TOLERANCE:.0%} of the committed trajectory "
          f"for all {len(committed)} workloads")


if __name__ == "__main__":
    main()
