//! Acceptance matrix for the fault-injection subsystem (DESIGN §Failure
//! model): unsafe perturbations of the simulated hardware must be
//! *detected* (differential divergence, protocol violation, or a
//! diagnosed deadlock), benign perturbations must leave architectural
//! results untouched, and a poisoned run must never take down the rest
//! of the sweep.

use nachos::sweep::{run_sweep, RunStatus, SweepConfig, SweepJob};
use nachos::{Backend, DeadlockCause, FaultKind, FaultPlan, FaultSpec, SimError};
use nachos_ir::{AffineExpr, Binding, IntOp, MemRef, RegionBuilder, UnknownPattern};
use nachos_workloads::generate_all;

/// A store feeding a same-address load: the compiler wires a FORWARD
/// edge, so forward-consume faults fire on every backend (OPT-LSQ
/// forwards through its store queue).
fn forward_job(name: &str) -> SweepJob {
    let mut b = RegionBuilder::new(name);
    let g = b.global("g", 64, 0);
    let m = MemRef::affine(g, AffineExpr::zero());
    let x = b.input();
    b.store(m.clone(), &[x]);
    b.load(m, &[]);
    SweepJob::new(
        name,
        b.finish(),
        Binding {
            base_addrs: vec![0x1_0000],
            ..Binding::default()
        },
    )
}

/// Two stores to one address: an ORDER token flows under the MDE
/// backends, giving token-class faults a guaranteed opportunity.
fn token_job(name: &str) -> SweepJob {
    let mut b = RegionBuilder::new(name);
    let g = b.global("g", 64, 0);
    let m = MemRef::affine(g, AffineExpr::zero());
    let x = b.input();
    b.store(m.clone(), &[x]);
    let y = b.int_op(IntOp::Add, &[x]);
    b.store(m, &[y]);
    SweepJob::new(
        name,
        b.finish(),
        Binding {
            base_addrs: vec![0x1_0000],
            ..Binding::default()
        },
    )
}

/// A MAY pair that truly conflicts on every invocation, with the store's
/// data behind a long multiply chain: releasing the load before the
/// conflict resolves lets it read stale memory, so a forced no-conflict
/// verdict must diverge from the reference.
fn conflicting_may_job(name: &str) -> SweepJob {
    let mut b = RegionBuilder::new(name);
    let u0 = b.unknown_ptr();
    let u1 = b.unknown_ptr();
    let mut v = b.input();
    for _ in 0..12 {
        v = b.int_op(IntOp::Mul, &[v]);
    }
    b.store(MemRef::unknown(u0, 0), &[v]);
    b.load(MemRef::unknown(u1, 0), &[]);
    SweepJob::new(
        name,
        b.finish(),
        Binding {
            unknowns: vec![
                UnknownPattern::Fixed(0x10_0000),
                UnknownPattern::Fixed(0x10_0000),
            ],
            ..Binding::default()
        },
    )
}

fn cfg() -> SweepConfig {
    SweepConfig::default().with_invocations(8)
}

fn single(kind: FaultKind) -> FaultPlan {
    FaultPlan::single(FaultSpec::new(kind, 0))
}

#[test]
fn unsafe_faults_are_detected_on_every_applicable_backend() {
    // Corrupting a forwarded value must trip the differential check on
    // all three backends (each forwards the store's value to the load).
    let jobs =
        [forward_job("corrupt").with_fault(single(FaultKind::CorruptForward { mask: 0xff }))];
    let sweep = run_sweep(&jobs, &cfg());
    for r in &sweep.jobs[0].runs {
        assert_eq!(
            r.status,
            RunStatus::FaultDetected,
            "[{}] corrupted forward slipped through undetected",
            r.variant
        );
        assert!(
            !r.injected().is_empty(),
            "[{}] detection must carry the fired-fault log",
            r.variant
        );
    }

    // Forcing a truly-conflicting `==?` check to report no-conflict
    // releases the load early; the stale value must be flagged.
    let jobs = [
        conflicting_may_job("no-conflict").with_fault(FaultPlan::single(
            FaultSpec::new(FaultKind::ForceNoConflict, 0).on_backend(Backend::Nachos),
        )),
    ];
    let sweep = run_sweep(&jobs, &cfg());
    for r in &sweep.jobs[0].runs {
        let expect = if r.backend == Backend::Nachos {
            RunStatus::FaultDetected
        } else {
            RunStatus::Ok
        };
        assert_eq!(r.status, expect, "[{}]", r.variant);
    }

    // A duplicated ordering token underflows the receiver's token count:
    // the engine must report a structured protocol violation, not panic.
    let jobs = [token_job("dup").with_fault(FaultPlan::single(
        FaultSpec::new(FaultKind::DuplicateToken, 0).on_backend(Backend::NachosSw),
    ))];
    let sweep = run_sweep(&jobs, &cfg());
    let run = &sweep.jobs[0].runs[1];
    assert_eq!(run.status, RunStatus::FaultDetected);
    assert!(
        matches!(run.error, Some(SimError::ProtocolViolation { .. })),
        "expected a protocol violation, got {:?}",
        run.detail
    );
}

#[test]
fn benign_faults_leave_results_identical() {
    // Delaying a memory response and forcing a spurious conflict are pure
    // timing perturbations: every run must still match the (fault-free)
    // reference execution bit for bit.
    let jobs = [
        forward_job("delay").with_fault(single(FaultKind::DelayMem { cycles: 9 })),
        conflicting_may_job("force-conflict").with_fault(single(FaultKind::ForceConflict)),
        forward_job("mask0").with_fault(single(FaultKind::CorruptForward { mask: 0 })),
    ];
    let sweep = run_sweep(&jobs, &cfg());
    for job in &sweep.jobs {
        for r in &job.runs {
            assert_eq!(
                r.status,
                RunStatus::Ok,
                "{} [{}]: benign fault changed architectural results: {:?}",
                job.name,
                r.variant,
                r.detail
            );
            let run = r.try_run().expect("ok runs carry their live result");
            assert_eq!(
                run.sim.mem, job.reference.mem,
                "{} [{}]",
                job.name, r.variant
            );
            assert_eq!(
                run.sim.loads.digest(),
                job.reference.loads.digest(),
                "{} [{}]",
                job.name,
                r.variant
            );
        }
    }
}

#[test]
fn dropped_token_is_diagnosed_as_deadlock_within_budget() {
    let jobs = [token_job("drop").with_fault(FaultPlan::single(
        FaultSpec::new(FaultKind::DropToken, 0).on_backend(Backend::NachosSw),
    ))];
    let sweep = run_sweep(&jobs, &cfg());
    let run = &sweep.jobs[0].runs[1];
    assert_eq!(run.status, RunStatus::Deadlock);
    let Some(SimError::Deadlock(info)) = &run.error else {
        panic!("expected a deadlock dump, got {:?}", run.detail);
    };
    assert!(
        !info.stalled.is_empty(),
        "the dump must name the stalled operations"
    );
    assert!(
        info.stalled.iter().any(|s| s.token_pending > 0),
        "a victim must be waiting on the withheld token: {info}"
    );
    assert!(
        matches!(
            info.cause,
            DeadlockCause::Starved | DeadlockCause::BudgetExhausted
        ),
        "cause must be structured"
    );
    assert!(
        info.cycle <= info.budget,
        "the watchdog fired past its budget: cycle {} > budget {}",
        info.cycle,
        info.budget
    );
    assert!(
        info.injected.iter().any(|f| f.contains("drop-token")),
        "the dump must list the injected fault: {:?}",
        info.injected
    );
    // The unaffected backends still complete and match the reference.
    assert_eq!(sweep.jobs[0].runs[0].status, RunStatus::Ok);
    assert_eq!(sweep.jobs[0].runs[2].status, RunStatus::Ok);
}

#[test]
fn full_sweep_survives_a_poisoned_run() {
    // The full 27-workload Table II matrix with one backend of one job
    // forced to panic: the other 80 runs must complete and match.
    let mut jobs: Vec<SweepJob> = generate_all()
        .into_iter()
        .map(|w| SweepJob::new(w.spec.name, w.region, w.binding))
        .collect();
    assert_eq!(jobs.len(), 27, "Table II has 27 workloads");
    let victim = 13;
    let victim_name = jobs[victim].name.clone();
    jobs[victim].fault =
        FaultPlan::single(FaultSpec::new(FaultKind::PanicOnEvent, 0).on_backend(Backend::Nachos));

    let sweep = run_sweep(&jobs, &cfg());
    let statuses = sweep.statuses();
    assert_eq!(statuses.len(), 81, "27 jobs x 3 backends");
    let panicked: Vec<_> = statuses
        .iter()
        .filter(|(_, _, s)| *s == RunStatus::Panic)
        .collect();
    assert_eq!(panicked.len(), 1, "exactly the poisoned run panics");
    assert_eq!(panicked[0].0, victim_name);
    assert_eq!(panicked[0].1, "nachos");
    let ok = statuses
        .iter()
        .filter(|(_, _, s)| *s == RunStatus::Ok)
        .count();
    assert_eq!(ok, 80, "every other run completes and matches");

    // The poisoned cell is reported, not silently absent, in the JSON.
    let json = sweep.to_json();
    assert!(json.contains("\"status\": \"panic\""));
    assert!(json.contains("injected fault: panic-on-event"));
}
