//! Telemetry is observation, never causation: attaching any
//! [`TelemetrySink`] to a run must yield bit-identical results to
//! running without one. These tests pin that contract from two sides —
//! random regions under every backend (proptest), and a real Table II
//! workload with live MAY-edge traffic — and additionally pin the
//! `nachos-stats-v1` stream itself as byte-deterministic across
//! repeated runs. (The sweep-v4 *report* bytes are pinned separately by
//! `tests/golden.rs`, which runs the whole matrix sinkless; together
//! with the identity proven here, report bytes cannot depend on
//! telemetry.)

use nachos::testutil::{build_plan_region, OpPlan};
use nachos::{
    run_backend_observed_in, run_backend_with_stages_in, Backend, BackpressureEvent, CycleRecord,
    EnergyModel, NoopSink, RunSummary, SimArena, SimConfig, StatsWriter, TelemetrySink,
};
use nachos_alias::StageConfig;
use nachos_ir::{Binding, Region};
use proptest::prelude::*;

const BACKENDS: [Backend; 4] = [
    Backend::OptLsq,
    Backend::NachosSw,
    Backend::Nachos,
    Backend::Ideal,
];

/// A sink that consumes every hook (so the compiler cannot elide the
/// callbacks) without influencing anything.
#[derive(Default)]
struct CountingSink {
    cycles: u64,
    events: u64,
    backpressure: u64,
    summaries: u64,
}

impl TelemetrySink for CountingSink {
    fn on_cycle(&mut self, rec: &CycleRecord) {
        self.cycles += 1;
        self.events += rec.events;
    }

    fn on_backpressure(&mut self, _ev: &BackpressureEvent) {
        self.backpressure += 1;
    }

    fn on_run_end(&mut self, _summary: &RunSummary) {
        self.summaries += 1;
    }
}

fn arb_op() -> impl Strategy<Value = OpPlan> {
    (any::<bool>(), 0usize..5, 0i64..4, any::<bool>()).prop_map(
        |(is_store, target, slot, strided)| OpPlan {
            is_store,
            target,
            slot,
            strided,
        },
    )
}

/// Renders every `SimResult` field except the final memory into a
/// comparable byte string. The memory is compared separately with its
/// content-based `Eq` (its `Debug` goes through a `HashMap`, whose
/// iteration order is not part of the result).
fn fingerprint(sim: &nachos::SimResult) -> String {
    format!(
        "{:?}|{}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}|{}|{:?}",
        sim.backend,
        sim.cycles,
        sim.invocations,
        sim.events,
        sim.stalls,
        sim.energy,
        sim.loads,
        sim.l1,
        sim.llc,
        sim.bloom,
        sim.comparator_sites,
        sim.queue_events,
        sim.heap_max_depth,
        sim.injected,
    )
}

/// Runs one backend with and without sinks attached and asserts the
/// results (every `SimResult` field) are bit-identical. Returns the
/// stats stream bytes for determinism checks.
fn assert_observation_only(
    region: &Region,
    binding: &Binding,
    backend: Backend,
    invocations: u64,
) -> Vec<u8> {
    let cfg = SimConfig::default().with_invocations(invocations);
    let energy = EnergyModel::default();
    let stages = StageConfig::full();

    let mut arena = SimArena::new();
    let bare =
        run_backend_with_stages_in(&mut arena, region, binding, backend, &cfg, &energy, stages)
            .expect("unobserved run succeeds");

    let mut noop = NoopSink;
    let with_noop = run_backend_observed_in(
        &mut arena, region, binding, backend, &cfg, &energy, stages, &mut noop,
    )
    .expect("noop-observed run succeeds");

    let mut counting = CountingSink::default();
    let with_counting = run_backend_observed_in(
        &mut arena,
        region,
        binding,
        backend,
        &cfg,
        &energy,
        stages,
        &mut counting,
    )
    .expect("counting-observed run succeeds");

    let mut stats = StatsWriter::new(Vec::new(), "prop");
    let with_stats = run_backend_observed_in(
        &mut arena, region, binding, backend, &cfg, &energy, stages, &mut stats,
    )
    .expect("stats-observed run succeeds");

    let bare_bytes = fingerprint(&bare.sim);
    for (label, run) in [
        ("NoopSink", &with_noop),
        ("CountingSink", &with_counting),
        ("StatsWriter", &with_stats),
    ] {
        assert_eq!(
            bare_bytes,
            fingerprint(&run.sim),
            "{backend:?}: {label} changed the result"
        );
        assert_eq!(
            bare.sim.mem, run.sim.mem,
            "{backend:?}: {label} changed the final memory"
        );
    }
    assert_eq!(
        counting.summaries, 1,
        "{backend:?}: exactly one run summary per run"
    );
    assert!(
        counting.cycles > 0,
        "{backend:?}: a completed run closes at least one cycle"
    );
    stats.finish().expect("in-memory stream cannot fail")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any sink, any backend, any region: bit-identical cycles, stall
    /// counters, energy, and queue statistics.
    #[test]
    fn sinks_never_perturb_results(
        ops in proptest::collection::vec(arb_op(), 1..10)
    ) {
        let (region, binding) = build_plan_region(&ops);
        for backend in BACKENDS {
            let first = assert_observation_only(&region, &binding, backend, 4);
            let second = assert_observation_only(&region, &binding, backend, 4);
            prop_assert_eq!(
                &first,
                &second,
                "stats stream must be byte-deterministic across runs"
            );
            prop_assert!(!first.is_empty(), "stats stream carries records");
        }
    }
}

/// The contract holds on a real workload with live MAY-edge traffic
/// (art: comparator checks, conflicts, the works), and the stream
/// carries per-cycle records for it.
#[test]
fn telemetry_identity_on_art() {
    let workloads = nachos_workloads::generate_all();
    let art = workloads
        .iter()
        .find(|w| w.spec.name == "art")
        .expect("art is in the Table II suite");
    for backend in BACKENDS {
        let bytes = assert_observation_only(&art.region, &art.binding, backend, 8);
        let text = String::from_utf8(bytes).expect("stats stream is UTF-8");
        assert!(
            text.lines().any(|l| l.contains("\"t\": \"cycle\"")),
            "{backend:?}: stream carries cycle records"
        );
        assert!(
            text.lines().any(|l| l.contains("\"t\": \"summary\"")),
            "{backend:?}: stream carries the run summary"
        );
    }
}
