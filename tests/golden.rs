//! Golden-snapshot parity suite.
//!
//! The committed fixture (`tests/goldens/sweep-v4.json`) pins the
//! `nachos-sweep-v4` report of the layered scheduler-core + policy-trait
//! engine; any engine or orchestration change must reproduce it
//! **byte-identically** — cycles, stall attribution, event counts,
//! energy, cache statistics, attempt counts and the reference digests,
//! for all three paper backends, across six representative Table II
//! workloads (fully-resolved, MAY-heavy and multi-dimensional mixes).
//!
//! Regenerate with `NACHOS_BLESS_GOLDENS=1 cargo test --test golden` —
//! but only when a *deliberate* behaviour change is being made; diff the
//! fixture before committing.

use nachos::sweep::{run_sweep, SweepConfig, SweepJob};
use nachos_workloads::{by_name, generate};
use std::path::PathBuf;

/// A deliberate mix: fully-resolved affine workloads (`gzip`, `fft-2d`),
/// partially-resolved pointer chasers (`parser`, `183.equake`) and
/// MAY-heavy regions with real dynamic conflicts (`art`, `401.bzip2`).
const GOLDEN_WORKLOADS: [&str; 6] = ["gzip", "parser", "art", "183.equake", "401.bzip2", "fft-2d"];

const GOLDEN_INVOCATIONS: u64 = 12;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("goldens")
        .join("sweep-v4.json")
}

fn golden_sweep_json() -> String {
    let jobs: Vec<SweepJob> = GOLDEN_WORKLOADS
        .iter()
        .map(|name| {
            let spec = by_name(name).unwrap_or_else(|| panic!("unknown workload {name}"));
            let w = generate(&spec);
            SweepJob::new(w.spec.name, w.region, w.binding)
        })
        .collect();
    let cfg = SweepConfig::default()
        .with_invocations(GOLDEN_INVOCATIONS)
        .with_threads(1);
    run_sweep(&jobs, &cfg).to_json()
}

#[test]
fn engine_reproduces_committed_goldens_byte_identically() {
    let json = golden_sweep_json();
    let path = golden_path();
    if std::env::var_os("NACHOS_BLESS_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).expect("goldens dir");
        std::fs::write(&path, &json).expect("writing golden fixture");
        eprintln!("blessed {} ({} bytes)", path.display(), json.len());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); regenerate with \
             NACHOS_BLESS_GOLDENS=1 cargo test --test golden",
            path.display()
        )
    });
    if json != expected {
        // Point at the first divergent line: a full-report assert_eq dump
        // is unreadable at this size.
        for (i, (got, want)) in json.lines().zip(expected.lines()).enumerate() {
            assert_eq!(
                got,
                want,
                "golden divergence at line {} of {}",
                i + 1,
                path.display()
            );
        }
        panic!(
            "golden length divergence: {} bytes generated vs {} committed",
            json.len(),
            expected.len()
        );
    }
}
