//! Shape invariants from the paper's evaluation, enforced as tests: the
//! qualitative results (who wins, and where) must hold on every build.

use nachos::sweep::{run_sweep, SweepConfig, SweepJob};
use nachos::{run_backend, Backend, EnergyModel, SimConfig};
use nachos_alias::{analyze, StageConfig};
use nachos_workloads::{by_name, generate, generate_all};

fn cfg() -> SimConfig {
    SimConfig::default().with_invocations(24)
}

fn suite_jobs() -> Vec<SweepJob> {
    generate_all()
        .into_iter()
        .map(|w| SweepJob::new(w.spec.name, w.region, w.binding))
        .collect()
}

#[test]
fn all_workloads_all_backends_match_reference() {
    // The central invariant (DESIGN §5): every backend reproduces the
    // in-order reference executor's memory state and load observations on
    // all 27 Table II workloads. The parallel sweep harness differential-
    // checks each of the 27 x 3 runs.
    let jobs = suite_jobs();
    assert_eq!(jobs.len(), 27, "Table II has 27 workloads");
    let sweep = run_sweep(&jobs, &SweepConfig::default().with_invocations(16));
    assert_eq!(sweep.variants.len(), 3, "OPT-LSQ, NACHOS-SW, NACHOS");
    assert!(
        sweep.all_match(),
        "backend-vs-reference divergence: {:?}",
        sweep.mismatches()
    );
}

#[test]
fn sweep_report_is_thread_count_independent() {
    // Determinism contract of the harness: the JSON report is
    // byte-identical no matter how many workers ran the sweep.
    let jobs: Vec<SweepJob> = suite_jobs().into_iter().take(6).collect();
    let base = SweepConfig::default().with_invocations(8);
    let serial = run_sweep(&jobs, &base.clone().with_threads(1));
    let wide = run_sweep(&jobs, &base.with_threads(8));
    assert_eq!(serial.to_json(), wide.to_json());
}

#[test]
fn nachos_recovers_every_sw_slowdown() {
    // §VIII-A: wherever NACHOS-SW serializes on MAY edges, the hardware
    // checks recover most of the loss. Require NACHOS to stay within 15%
    // of OPT-LSQ on every MAY-heavy workload where NACHOS-SW is >15% slower.
    let energy = EnergyModel::default();
    for name in [
        "art",
        "soplex",
        "453.povray",
        "fft-2d",
        "freqmi.",
        "histog.",
    ] {
        let w = generate(&by_name(name).unwrap());
        let lsq = run_backend(&w.region, &w.binding, Backend::OptLsq, &cfg(), &energy).unwrap();
        let sw = run_backend(&w.region, &w.binding, Backend::NachosSw, &cfg(), &energy).unwrap();
        let hw = run_backend(&w.region, &w.binding, Backend::Nachos, &cfg(), &energy).unwrap();
        let sw_slow = nachos::pct_slowdown(sw.sim.cycles, lsq.sim.cycles);
        let hw_slow = nachos::pct_slowdown(hw.sim.cycles, lsq.sim.cycles);
        assert!(
            sw_slow > 10.0,
            "{name}: expected a NACHOS-SW slowdown, got {sw_slow:+.1}%"
        );
        assert!(
            hw_slow < 15.0,
            "{name}: NACHOS failed to recover ({hw_slow:+.1}% vs LSQ)"
        );
        assert!(
            hw.sim.cycles < sw.sim.cycles,
            "{name}: hardware checks must beat serialization"
        );
    }
}

#[test]
fn fully_resolved_workloads_tie_sw_and_hw() {
    // With no MAY edges, NACHOS and NACHOS-SW are the same machine.
    let energy = EnergyModel::default();
    for name in ["gzip", "183.equake", "lbm", "dwt53", "fluida."] {
        let w = generate(&by_name(name).unwrap());
        let sw = run_backend(&w.region, &w.binding, Backend::NachosSw, &cfg(), &energy).unwrap();
        let hw = run_backend(&w.region, &w.binding, Backend::Nachos, &cfg(), &energy).unwrap();
        assert_eq!(sw.sim.cycles, hw.sim.cycles, "{name}");
        assert_eq!(hw.sim.events.may_checks, 0, "{name}");
    }
}

#[test]
fn nachos_always_saves_energy_vs_lsq() {
    // The pay-as-you-go claim: NACHOS's disambiguation energy (MDE) never
    // exceeds what the LSQ spends, and total energy never regresses, on
    // any of the 27 workloads.
    let energy = EnergyModel::default();
    for w in generate_all() {
        if w.region.num_global_mem_ops() == 0 {
            continue;
        }
        let lsq = run_backend(&w.region, &w.binding, Backend::OptLsq, &cfg(), &energy).unwrap();
        let hw = run_backend(&w.region, &w.binding, Backend::Nachos, &cfg(), &energy).unwrap();
        assert!(
            hw.sim.energy.mde <= lsq.sim.energy.lsq(),
            "{}: MDE energy exceeds the LSQ's",
            w.spec.name
        );
        assert!(
            hw.sim.energy.total() < lsq.sim.energy.total(),
            "{}: NACHOS total energy regressed",
            w.spec.name
        );
    }
}

#[test]
fn appendix_profitability_set_matches_paper() {
    // Exactly seven workloads exceed one enforced MAY alias per memory
    // operation (the appendix's profitability discussion).
    let over: Vec<String> = generate_all()
        .iter()
        .filter_map(|w| {
            let n = w.region.num_global_mem_ops();
            if n == 0 {
                return None;
            }
            let a = analyze(&w.region, StageConfig::full());
            (a.plan.may.len() >= n).then(|| w.spec.name.to_owned())
        })
        .collect();
    assert_eq!(over.len(), 7, "paper: exactly 7; got {over:?}");
}

#[test]
fn baseline_compiler_hurts_stage_beneficiaries() {
    // Figure 12: without stages 2 and 4, the stage beneficiaries slow
    // down dramatically under a software-only scheme.
    let energy = EnergyModel::default();
    for name in ["parser", "183.equake", "lbm", "bodytrack"] {
        let w = generate(&by_name(name).unwrap());
        let full = nachos::run_backend_with_stages(
            &w.region,
            &w.binding,
            Backend::NachosSw,
            &cfg(),
            &energy,
            StageConfig::full(),
        )
        .unwrap();
        let base = nachos::run_backend_with_stages(
            &w.region,
            &w.binding,
            Backend::NachosSw,
            &cfg(),
            &energy,
            StageConfig::baseline(),
        )
        .unwrap();
        let slow = nachos::pct_slowdown(base.sim.cycles, full.sim.cycles);
        assert!(
            slow > 50.0,
            "{name}: baseline compiler should pay heavily, got {slow:+.1}%"
        );
    }
}

#[test]
fn bloom_zero_class_contains_the_resolved_loadonly_workloads() {
    // Figure 18's table: the 0%-bloom-hit class holds the workloads with
    // disjoint in-flight footprints.
    let energy = EnergyModel::default();
    for name in ["gzip", "181.mcf", "crafty", "sjeng"] {
        let w = generate(&by_name(name).unwrap());
        let lsq = run_backend(&w.region, &w.binding, Backend::OptLsq, &cfg(), &energy).unwrap();
        assert_eq!(
            lsq.sim.bloom.hits, 0,
            "{name}: expected a perfect bloom filter"
        );
    }
}
