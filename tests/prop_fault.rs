//! Property tests for engine robustness under *structural* perturbation:
//! take a valid region, compile its memory-dependency edges, then mutate
//! the graph — withhold an ordering-token edge or splice in a spurious
//! one — and require the system to stay composed. Every mutated region
//! must either be rejected by `nachos_ir::validate_region` (and the
//! simulator must return the same structured error), or simulate to
//! completion under the engine watchdog: correct results, a diagnosed
//! [`SimError::Deadlock`], or another structured error — never a hang,
//! never a panic.

use std::panic::{catch_unwind, AssertUnwindSafe};

use nachos::{reference, simulate, Backend, EnergyModel, SimConfig, SimError};
use nachos_alias::{compile, StageConfig};
use nachos_ir::{
    AffineExpr, Binding, EdgeKind, IntOp, LoopInfo, MemRef, NodeId, Region, RegionBuilder,
    UnknownPattern,
};
use proptest::prelude::*;

/// Blueprint for one random memory operation (as in `prop_ordering`).
#[derive(Clone, Debug)]
struct OpPlan {
    is_store: bool,
    /// 0..2 = globals, 2..4 = unknown pointers.
    target: usize,
    /// Slot within the object (small, so MUST and MAY pairs are common).
    slot: i64,
    strided: bool,
}

fn arb_op() -> impl Strategy<Value = OpPlan> {
    (any::<bool>(), 0usize..4, 0i64..3, any::<bool>()).prop_map(
        |(is_store, target, slot, strided)| OpPlan {
            is_store,
            target,
            slot,
            strided,
        },
    )
}

/// One structural mutation of a compiled region.
#[derive(Clone, Debug)]
enum Mutation {
    /// Remove the `pick`-th token edge (ORDER/MAY/FORWARD, modulo count):
    /// a consumer waits for an ordering token that is never produced, or
    /// an ordering constraint silently disappears.
    DropTokenEdge { pick: usize },
    /// Splice in an arbitrary extra edge (endpoints and kind modulo the
    /// region's tables). May be rejected by the validator (cycle,
    /// program-order violation) or survive as a redundant constraint.
    AddEdge { src: usize, dst: usize, kind: usize },
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    (0usize..2, 0usize..64, 0usize..64, 0usize..3).prop_map(|(which, a, b, kind)| {
        if which == 0 {
            Mutation::DropTokenEdge { pick: a }
        } else {
            Mutation::AddEdge {
                src: a,
                dst: b,
                kind,
            }
        }
    })
}

fn build(ops: &[OpPlan]) -> (Region, Binding) {
    let mut b = RegionBuilder::new("prop-fault");
    let i = b.enclosing_loop(LoopInfo::range("i", 0, 4));
    let g0 = b.global("g0", 4096, 0);
    let g1 = b.global("g1", 4096, 1);
    let u0 = b.unknown_ptr();
    let u1 = b.unknown_ptr();
    let x = b.input();
    let mut carried = x;
    for plan in ops {
        let node = if plan.target < 2 {
            let base = if plan.target == 0 { g0 } else { g1 };
            let mut off = AffineExpr::constant_expr(plan.slot * 8);
            if plan.strided {
                off = off.add(&AffineExpr::var(i).scaled(8));
            }
            let mref = MemRef::affine(base, off);
            if plan.is_store {
                b.store(mref, &[carried])
            } else {
                b.load(mref, &[])
            }
        } else {
            let u = if plan.target == 2 { u0 } else { u1 };
            let mref = MemRef::unknown(u, plan.slot * 8);
            if plan.is_store {
                b.store(mref, &[carried])
            } else {
                b.load(mref, &[])
            }
        };
        if !plan.is_store {
            carried = b.int_op(IntOp::Add, &[node, carried]);
        }
    }
    b.output(carried);
    let region = b.finish();
    let binding = Binding {
        base_addrs: vec![0x1000, 0x2000],
        params: Vec::new(),
        unknowns: vec![
            UnknownPattern::Scatter {
                seed: 5,
                lo: 0x1000,
                hi: 0x1020,
                align: 8,
            },
            UnknownPattern::Stride {
                base: 0x1000,
                step: 8,
            },
        ],
    };
    (region, binding)
}

/// Applies the mutation; returns `false` when it degenerates to a no-op
/// (no token edge to drop, or the spliced edge already exists).
fn apply_mutation(region: &mut Region, m: &Mutation) -> bool {
    match *m {
        Mutation::DropTokenEdge { pick } => {
            let token_indices: Vec<usize> = region
                .dfg
                .edges()
                .enumerate()
                .filter(|(_, e)| e.kind.is_mde())
                .map(|(i, _)| i)
                .collect();
            if token_indices.is_empty() {
                return false;
            }
            let index = token_indices[pick % token_indices.len()];
            region.dfg.remove_edge_unchecked(index);
            true
        }
        Mutation::AddEdge { src, dst, kind } => {
            let n = region.dfg.num_nodes();
            if n == 0 {
                return false;
            }
            let (src, dst) = (NodeId::new(src % n), NodeId::new(dst % n));
            // FORWARD is excluded: a spurious forward between
            // *non-aliasing* operations legitimately changes the value a
            // load observes without any structural invariant breaking,
            // so it belongs to the value-fault injector (CorruptForward),
            // not the structural mutator.
            let kind = [EdgeKind::Data, EdgeKind::Order, EdgeKind::May][kind % 3];
            if src == dst
                || region
                    .dfg
                    .out_edges(src)
                    .any(|e| e.dst == dst && e.kind == kind)
            {
                return false;
            }
            region.dfg.add_edge_unchecked(src, dst, kind);
            true
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The robustness contract: a structurally-mutated region either
    /// fails validation with structured diagnostics (mirrored by the
    /// simulator), or every MDE backend terminates within the watchdog
    /// budget — matching the reference, or reporting a structured error.
    /// The engine never panics and never hangs.
    #[test]
    fn mutated_regions_never_hang_or_panic(
        ops in proptest::collection::vec(arb_op(), 1..12),
        mutation in arb_mutation(),
    ) {
        let (mut region, binding) = build(&ops);
        compile(&mut region, StageConfig::full());
        let mutated = apply_mutation(&mut region, &mutation);
        let config = SimConfig::default().with_invocations(4);
        let energy = EnergyModel::default();

        match nachos_ir::validate_region(&region) {
            Err(errors) => {
                prop_assert!(!errors.is_empty());
                // The simulator must refuse the same region with the
                // same structured diagnostics instead of crashing.
                let res = simulate(&region, &binding, Backend::NachosSw, &config, &energy);
                match res {
                    Err(SimError::Validation(from_sim)) => prop_assert_eq!(from_sim, errors),
                    other => prop_assert!(
                        false,
                        "validator rejected but simulate returned {:?} (mutation {:?})",
                        other.map(|r| r.cycles), mutation
                    ),
                }
            }
            Ok(()) => {
                let expected = reference::execute(&region, &binding, config.invocations);
                for backend in [Backend::NachosSw, Backend::Nachos] {
                    let caught = catch_unwind(AssertUnwindSafe(|| {
                        simulate(&region, &binding, backend, &config, &energy)
                    }));
                    let Ok(res) = caught else {
                        panic!(
                            "{backend} panicked on a validator-approved region \
                             (ops {ops:?}, mutation {mutation:?})"
                        );
                    };
                    match res {
                        Ok(sim) => {
                            // A surviving *added* edge only constrains the
                            // schedule (or feeds another deterministic
                            // operand), so results must stay correct. A
                            // *dropped* edge may legitimately reorder, so
                            // only termination is required of it.
                            if !mutated || matches!(mutation, Mutation::AddEdge { .. }) {
                                prop_assert_eq!(
                                    &sim.mem, &expected.mem,
                                    "{} diverged (ops {:?}, mutation {:?})",
                                    backend, ops, mutation
                                );
                                prop_assert_eq!(
                                    sim.loads.digest(), expected.loads.digest(),
                                    "{} load values diverged (ops {:?}, mutation {:?})",
                                    backend, ops, mutation
                                );
                            }
                        }
                        Err(SimError::Deadlock(info)) => {
                            prop_assert!(
                                !info.stalled.is_empty(),
                                "deadlock dump names no stalled nodes ({:?})",
                                mutation
                            );
                        }
                        // Any other structured error is an acceptable
                        // refusal; panics and hangs are not.
                        Err(_) => {}
                    }
                }
            }
        }
    }
}
