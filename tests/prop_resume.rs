//! Property: journal replay is insensitive to completion order.
//!
//! Workers race, so the order in which cells reach the journal is a
//! scheduling accident — two interrupted runs of the same sweep can leave
//! the same records in any permutation (and, after a crash-retry, with
//! benign duplicates). Resuming from any such journal must replay every
//! cell and reproduce the uninterrupted report byte for byte.

use std::path::PathBuf;
use std::sync::OnceLock;

use nachos::sweep::journal::Journal;
use nachos::sweep::{run_sweep, run_sweep_journaled, SweepConfig, SweepJob};
use nachos::{Backend, FaultKind, FaultPlan, FaultSpec};
use nachos_ir::{AffineExpr, Binding, IntOp, MemRef, RegionBuilder};
use nachos_workloads::{by_name, generate};
use proptest::prelude::*;

/// Shared fixture: the jobs, their uninterrupted report, and the journal
/// lines a complete journaled run leaves behind. Built once — every case
/// only reorders the lines and resumes.
struct Fixture {
    jobs: Vec<SweepJob>,
    cfg: SweepConfig,
    clean_json: String,
    lines: Vec<String>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut jobs = Vec::new();
        for name in ["gzip", "fft-2d"] {
            let w = generate(&by_name(name).expect("workload"));
            jobs.push(SweepJob::new(w.spec.name, w.region, w.binding));
        }
        // One transient cell (a retried deadlock) so multi-attempt logs
        // are part of what the permutation must preserve: two stores to
        // one address put an ORDER token in flight, and dropping it
        // deadlocks the NACHOS-SW run on every attempt.
        let mut b = RegionBuilder::new("drop-token");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let x = b.input();
        b.store(m.clone(), &[x]);
        let y = b.int_op(IntOp::Add, &[x]);
        b.store(m, &[y]);
        jobs.push(
            SweepJob::new(
                "drop-token",
                b.finish(),
                Binding {
                    base_addrs: vec![0x1_0000],
                    ..Binding::default()
                },
            )
            .with_fault(FaultPlan::single(
                FaultSpec::new(FaultKind::DropToken, 0).on_backend(Backend::NachosSw),
            )),
        );
        let cfg = SweepConfig::default()
            .with_invocations(4)
            .with_retries(1)
            .with_threads(1);
        let clean_json = run_sweep(&jobs, &cfg).to_json();

        let path = scratch("seed-journal.jsonl");
        let journal = Journal::create(&path).expect("create journal");
        let _ = run_sweep_journaled(&jobs, &cfg, Some(&journal));
        drop(journal);
        let lines: Vec<String> = std::fs::read_to_string(&path)
            .expect("read journal")
            .lines()
            .map(str::to_owned)
            .collect();
        std::fs::remove_file(&path).ok();
        assert_eq!(lines.len(), 3 * cfg.variants.len());
        Fixture {
            jobs,
            cfg,
            clean_json,
            lines,
        }
    })
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nachos-prop-resume");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

/// Fisher–Yates driven by a splitmix64 stream from the case's seed.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    let mut next = || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any permutation of the journal's records — optionally with one
    /// record duplicated, as a crash between append and re-claim can
    /// produce — resumes to the uninterrupted report, executing nothing.
    #[test]
    fn replay_is_insensitive_to_journal_record_order(
        seed in any::<u64>(),
        dup in 0usize..32,
    ) {
        let fx = fixture();
        let mut lines = fx.lines.clone();
        // A duplicated record is benign: identical content, last wins.
        let dup_line = lines[dup % lines.len()].clone();
        lines.push(dup_line);
        shuffle(&mut lines, seed);

        let path = scratch(&format!("case-{seed:016x}-{dup}.jsonl"));
        std::fs::write(&path, format!("{}\n", lines.join("\n"))).expect("write journal");
        let journal = Journal::resume(&path).expect("resume journal");
        prop_assert_eq!(journal.replay_len(), fx.lines.len());
        prop_assert_eq!(journal.skipped(), 0);

        let (resumed, stats) = run_sweep_journaled(&fx.jobs, &fx.cfg, Some(&journal));
        prop_assert_eq!(stats.executed, 0, "every cell must replay");
        prop_assert_eq!(stats.replayed, fx.lines.len());
        prop_assert_eq!(resumed.to_json(), fx.clean_json.clone());
        std::fs::remove_file(&path).ok();
    }
}
