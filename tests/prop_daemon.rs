//! Property: interleaved concurrent clients never observe an invalid
//! job-state transition.
//!
//! Several client threads hammer one in-process [`Daemon`] — submitting,
//! polling status, and cancelling at seed-derived interleavings — while
//! the executor runs jobs underneath them. Every observation is recorded
//! in one global order and checked against the declared state machine:
//! consecutive observations of a job must be connected in the legal
//! transition graph's closure, terminal states must be absorbing, and
//! admission must stay within the configured bound. Afterwards a drain
//! settles everything and a restart over the same root must reproduce
//! every terminal state from the journal alone.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use nachos::sweep::daemon::{
    CancelError, Daemon, DaemonConfig, JobStatus, MatrixSpec, SubmitError,
};
use nachos::sweep::{SweepConfig, SweepJob};
use nachos_workloads::{by_name, generate};
use proptest::prelude::*;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn scratch() -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join("nachos-prop-daemon")
        .join(format!("case-{n}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A tiny but real matrix: one workload, two invocations, serial — the
/// point is lifecycle interleaving, not simulation volume.
fn resolver(spec: &MatrixSpec) -> Result<(Vec<SweepJob>, SweepConfig), String> {
    let w = generate(&by_name("gzip").expect("workload"));
    let jobs = vec![SweepJob::new(w.spec.name, w.region, w.binding)];
    let cfg = SweepConfig::default()
        .with_invocations(spec.invocations)
        .with_threads(1)
        .with_retries(spec.max_retries);
    Ok((jobs, cfg))
}

/// Transitive closure of [`JobStatus::can_transition`]: the set of
/// `(from, to)` pairs a client may legally observe in consecutive
/// snapshots of one job (states can be skipped between two polls, never
/// rewound outside the graph).
fn reachable(from: JobStatus, to: JobStatus) -> bool {
    if from == to {
        return true;
    }
    let all = [
        JobStatus::Queued,
        JobStatus::Running,
        JobStatus::Settled,
        JobStatus::Cancelled,
        JobStatus::Quarantined,
        JobStatus::DeadlineExceeded,
    ];
    // Breadth-first walk over the declared edges.
    let mut seen = vec![from];
    let mut frontier = vec![from];
    while let Some(s) = frontier.pop() {
        for next in all {
            if JobStatus::can_transition(s, next) && !seen.contains(&next) {
                if next == to {
                    return true;
                }
                seen.push(next);
                frontier.push(next);
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn concurrent_clients_never_observe_an_invalid_transition(
        seed in any::<u64>(),
        clients in 2usize..4,
    ) {
        const CAPACITY: usize = 3;
        let dir = scratch();
        let mut cfg = DaemonConfig::new(dir.join("state"), dir.join("d.sock"));
        cfg.capacity = CAPACITY;
        cfg.poll = Duration::from_millis(5);
        let daemon = Arc::new(Daemon::open(cfg.clone(), Arc::new(resolver)).expect("open"));
        let server = {
            let daemon = Arc::clone(&daemon);
            std::thread::spawn(move || daemon.serve())
        };

        // One global, totally-ordered observation log: (job, status).
        // Lock-acquisition order is the order the invariants are judged
        // in, which is exactly the order clients saw the states.
        let observations: Arc<Mutex<Vec<(u64, JobStatus)>>> = Arc::new(Mutex::new(Vec::new()));
        let workers: Vec<_> = (0..clients)
            .map(|c| {
                let daemon = Arc::clone(&daemon);
                let observations = Arc::clone(&observations);
                let mut rng = seed ^ (c as u64).wrapping_mul(0xdead_beef_cafe_f00d);
                std::thread::spawn(move || {
                    let mut known: Vec<u64> = Vec::new();
                    for _ in 0..12 {
                        match splitmix64(&mut rng) % 4 {
                            0 => match daemon.submit(MatrixSpec {
                                invocations: 2,
                                threads: 1,
                                ..MatrixSpec::default()
                            }) {
                                Ok(id) => {
                                    observations.lock().unwrap().push((id, JobStatus::Queued));
                                    known.push(id);
                                }
                                Err(SubmitError::QueueFull { queued, .. }) => {
                                    assert!(
                                        queued >= CAPACITY,
                                        "rejected below the admission bound"
                                    );
                                }
                                Err(SubmitError::BadSpec(e)) => panic!("spec refused: {e}"),
                                Err(SubmitError::Draining) => panic!("nobody drains yet"),
                            },
                            1 | 2 => {
                                if let Some(&id) = known.get(
                                    (splitmix64(&mut rng) as usize)
                                        .checked_rem(known.len())
                                        .unwrap_or(0),
                                ) {
                                    if let Some(snap) = daemon.snapshot(id) {
                                        observations.lock().unwrap().push((id, snap.status));
                                    }
                                }
                            }
                            _ => {
                                if let Some(&id) = known.get(
                                    (splitmix64(&mut rng) as usize)
                                        .checked_rem(known.len())
                                        .unwrap_or(0),
                                ) {
                                    match daemon.cancel(id) {
                                        Ok(state) => observations
                                            .lock()
                                            .unwrap()
                                            .push((id, state)),
                                        Err(CancelError::AlreadyTerminal(state)) => {
                                            prop_assert!(state.is_terminal());
                                            observations.lock().unwrap().push((id, state));
                                        }
                                        Err(CancelError::Unknown) => {
                                            panic!("job {id} vanished")
                                        }
                                    }
                                }
                            }
                        }
                        std::thread::sleep(Duration::from_millis(u64::from(
                            splitmix64(&mut rng) as u32 % 7,
                        )));
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().expect("client thread");
        }

        // Drain and let the executor settle everything still admitted.
        daemon.drain();
        server.join().expect("serve thread").expect("serve exits cleanly");

        // Invariant 1: every consecutive observation pair per job is
        // connected in the legal transition graph's closure.
        // Invariant 2: terminal states are absorbing.
        let log = observations.lock().unwrap();
        let mut last: std::collections::HashMap<u64, JobStatus> = std::collections::HashMap::new();
        for &(id, status) in log.iter() {
            if let Some(&prev) = last.get(&id) {
                prop_assert!(
                    reachable(prev, status),
                    "job {id} observed illegal move {prev} -> {status}"
                );
                if prev.is_terminal() {
                    prop_assert_eq!(prev, status, "terminal state of job {} changed", id);
                }
            }
            last.insert(id, status);
        }

        // After the drain every admitted job is terminal, and nothing
        // sits in the queue.
        let settled = daemon.list();
        for snap in &settled {
            prop_assert!(
                snap.status.is_terminal(),
                "job {} still {} after drain",
                snap.id,
                snap.status
            );
        }
        prop_assert_eq!(daemon.queued(), 0);
        drop(daemon);

        // Restart over the same root: the journal alone reproduces every
        // terminal state.
        let reopened = Daemon::open(cfg, Arc::new(resolver)).expect("reopen");
        let recovered = reopened.list();
        prop_assert_eq!(recovered.len(), settled.len());
        for (a, b) in settled.iter().zip(&recovered) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.status, b.status, "job {} state lost across restart", a.id);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
