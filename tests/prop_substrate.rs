//! Property tests on the hardware substrates: cache replacement, the
//! counting bloom filter and the incremental reachability closure.

use nachos_alias::Reachability;
use nachos_ir::NodeId;
use nachos_lsq::CountingBloom;
use nachos_mem::{Cache, CacheConfig, DataMemory};
use proptest::prelude::*;
use std::collections::{HashSet, VecDeque};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// LRU invariant: the last `ways` distinct lines touched in a set are
    /// always resident.
    #[test]
    fn lru_keeps_most_recent_lines(addrs in proptest::collection::vec(0u64..0x400, 1..64)) {
        let config = CacheConfig { size_bytes: 256, ways: 2, line_bytes: 16, latency: 1 };
        let mut cache = Cache::new(config);
        let num_sets = config.num_sets();
        for &a in &addrs {
            cache.access(a, false);
        }
        // Recompute per-set recency and check residency of the newest two.
        for set in 0..num_sets {
            let mut recent: Vec<u64> = Vec::new();
            for &a in addrs.iter().rev() {
                let line = a / 16;
                if line % num_sets == set && !recent.contains(&line) {
                    recent.push(line);
                }
                if recent.len() == 2 {
                    break;
                }
            }
            for line in recent {
                prop_assert!(cache.probe(line * 16), "recently-touched line evicted");
            }
        }
    }

    /// A counting bloom filter never reports a false negative, and removal
    /// of everything restores emptiness for inserted keys.
    #[test]
    fn bloom_has_no_false_negatives(keys in proptest::collection::vec(0u64..10_000, 1..64)) {
        let mut bloom = CountingBloom::new(128, 2);
        for &k in &keys {
            bloom.insert(k);
        }
        for &k in &keys {
            prop_assert!(bloom.contains(k), "false negative for {k}");
        }
        for &k in &keys {
            bloom.remove(k);
        }
        // After removing every insertion the filter is globally empty, so
        // nothing can hit.
        for &k in &keys {
            prop_assert!(!bloom.contains(k), "residue after removal for {k}");
        }
    }

    /// Incremental closure equals BFS ground truth on random DAG edges
    /// (edges always forward: u < v, so acyclicity is structural).
    #[test]
    fn reachability_matches_bfs(edges in proptest::collection::vec((0usize..20, 1usize..20), 0..60)) {
        let n = 20;
        let mut reach = Reachability::empty(n);
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &edges {
            let (u, v) = if a < b { (a, b) } else if b < a { (b, a) } else { continue };
            reach.add_edge(NodeId::new(u), NodeId::new(v));
            adj[u].push(v);
        }
        for start in 0..n {
            let mut seen = HashSet::new();
            let mut q = VecDeque::from([start]);
            while let Some(x) = q.pop_front() {
                for &y in &adj[x] {
                    if seen.insert(y) {
                        q.push_back(y);
                    }
                }
            }
            for target in 0..n {
                prop_assert_eq!(
                    reach.reaches(NodeId::new(start), NodeId::new(target)),
                    seen.contains(&target),
                    "start {} target {}", start, target
                );
            }
        }
    }

    /// DataMemory byte-level writes compose like a byte array.
    #[test]
    fn data_memory_is_a_byte_array(
        writes in proptest::collection::vec((0u64..64, 1u8..=8, any::<u64>()), 1..32)
    ) {
        let mut mem = DataMemory::new();
        let mut model = [0u8; 80];
        for &(addr, size, value) in &writes {
            mem.write(addr, size, value);
            for k in 0..size {
                model[(addr + u64::from(k)) as usize] = (value >> (8 * k)) as u8;
            }
        }
        for start in 0..72u64 {
            let got = mem.read(start, 8);
            let mut want = 0u64;
            for k in (0..8).rev() {
                want = (want << 8) | u64::from(model[(start + k) as usize]);
            }
            prop_assert_eq!(got, want, "mismatch at {}", start);
        }
    }
}
