//! Property and suite tests for the backend cycle-count ordering:
//!
//! ```text
//! IDEAL  <=  NACHOS  <=  NACHOS-SW
//! ```
//!
//! The IDEAL oracle resolves every MAY edge with perfect knowledge and
//! zero check latency, so it lower-bounds NACHOS; NACHOS only relaxes
//! MAY edges that NACHOS-SW serializes unconditionally, so it never
//! loses to the software scheme on the same compiled region.

use nachos::testutil::{build_plan_region, OpPlan};
use nachos::{run_backend, Backend, EnergyModel, SimConfig};
use nachos_ir::{Binding, Region};
use proptest::prelude::*;

fn cycles(region: &Region, binding: &Binding, backend: Backend, invocations: u64) -> u64 {
    let cfg = SimConfig::default().with_invocations(invocations);
    run_backend(region, binding, backend, &cfg, &EnergyModel::default())
        .expect("simulation succeeds")
        .sim
        .cycles
}

fn arb_op() -> impl Strategy<Value = OpPlan> {
    (any::<bool>(), 0usize..5, 0i64..4, any::<bool>()).prop_map(
        |(is_store, target, slot, strided)| OpPlan {
            is_store,
            target,
            slot,
            strided,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn oracle_bounds_hold_on_random_regions(
        ops in proptest::collection::vec(arb_op(), 1..12)
    ) {
        let (region, binding) = build_plan_region(&ops);
        let ideal = cycles(&region, &binding, Backend::Ideal, 6);
        let hw = cycles(&region, &binding, Backend::Nachos, 6);
        let sw = cycles(&region, &binding, Backend::NachosSw, 6);
        prop_assert!(
            ideal <= hw,
            "IDEAL ({ideal}) must lower-bound NACHOS ({hw}) (ops: {ops:?})"
        );
        prop_assert!(
            hw <= sw,
            "NACHOS ({hw}) must not lose to NACHOS-SW ({sw}) (ops: {ops:?})"
        );
    }
}

/// The acceptance bound on the real workloads: the ordering holds on
/// every Table II sweep workload.
#[test]
fn oracle_bounds_hold_on_every_sweep_workload() {
    for w in nachos_workloads::generate_all() {
        let ideal = cycles(&w.region, &w.binding, Backend::Ideal, 12);
        let hw = cycles(&w.region, &w.binding, Backend::Nachos, 12);
        let sw = cycles(&w.region, &w.binding, Backend::NachosSw, 12);
        assert!(
            ideal <= hw && hw <= sw,
            "{}: expected IDEAL ({ideal}) <= NACHOS ({hw}) <= NACHOS-SW ({sw})",
            w.spec.name
        );
    }
}
