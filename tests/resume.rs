//! Crash-recovery acceptance suite (DESIGN §Failure model).
//!
//! A sweep interrupted at any point — process kill, torn journal write,
//! cancellation — must resume from its durable journal and emit a report
//! **byte-identical** to an uninterrupted run, retry attempt logs
//! included. A job that repeatedly kills its workers must be quarantined
//! without poisoning the rest of the matrix.

use std::fs::OpenOptions;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

use nachos::sweep::heartbeat::{Heartbeat, HeartbeatPhase};
use nachos::sweep::journal::Journal;
use nachos::sweep::shard::{
    enumerate_cells, run_sweep_sharded, shard_dir, shard_journal_path, shard_of, ShardConfig,
};
use nachos::sweep::{run_sweep, run_sweep_journaled, RunStatus, SweepConfig, SweepJob};
use nachos::{Backend, FaultKind, FaultPlan, FaultSpec};
use nachos_ir::{AffineExpr, Binding, IntOp, MemRef, RegionBuilder};
use nachos_workloads::{by_name, generate, generate_all};

fn tmp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nachos-resume-suite");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

fn job(name: &str) -> SweepJob {
    let w = generate(&by_name(name).unwrap_or_else(|| panic!("unknown workload {name}")));
    SweepJob::new(w.spec.name, w.region, w.binding)
}

/// Two stores to one address: an ORDER token flows under the MDE
/// backends, so a `DropToken` fault deterministically deadlocks the
/// NACHOS-SW run (and a retry deadlocks again — a multi-attempt cell).
fn token_job(name: &str) -> SweepJob {
    let mut b = RegionBuilder::new(name);
    let g = b.global("g", 64, 0);
    let m = MemRef::affine(g, AffineExpr::zero());
    let x = b.input();
    b.store(m.clone(), &[x]);
    let y = b.int_op(IntOp::Add, &[x]);
    b.store(m, &[y]);
    SweepJob::new(
        name,
        b.finish(),
        Binding {
            base_addrs: vec![0x1_0000],
            ..Binding::default()
        },
    )
    .with_fault(FaultPlan::single(
        FaultSpec::new(FaultKind::DropToken, 0).on_backend(Backend::NachosSw),
    ))
}

/// The interrupt-and-resume contract, end to end: a journaled sweep dies
/// after finishing only a prefix of its jobs — with a torn half-written
/// record at the journal's tail, as a real `kill -9` mid-append leaves —
/// and the resumed sweep replays the survivors, re-executes the rest, and
/// reproduces the uninterrupted report byte for byte. The job list
/// includes a deadlock-injected run under a retry budget, so the replayed
/// cells carry multi-attempt logs, not just terminal statuses.
#[test]
fn interrupted_sweep_resumes_byte_identically() {
    let jobs = vec![job("gzip"), token_job("drop-token"), job("fft-2d")];
    let cfg = SweepConfig::default()
        .with_invocations(6)
        .with_retries(1)
        .with_threads(2);
    let variants = cfg.variants.len();

    // The reference: one uninterrupted, unjournaled run.
    let clean = run_sweep(&jobs, &cfg).to_json();

    // "Crash" after two of three jobs, then tear the journal's tail the
    // way an interrupted append would.
    let path = tmp_path("interrupt.jsonl");
    {
        let journal = Journal::create(&path).expect("create journal");
        let (_, stats) = run_sweep_journaled(&jobs[..2], &cfg, Some(&journal));
        assert_eq!(stats.executed, 2 * variants);
        assert_eq!(stats.journal_errors, 0);
    }
    let mut f = OpenOptions::new().append(true).open(&path).expect("open");
    write!(f, "{{\"journal\": \"nachos-journal-v1\", \"key\": \"dead").expect("torn write");
    drop(f);

    // Resume over the full job list: the two finished jobs replay, the
    // torn record is skipped, the third job runs live.
    let journal = Journal::resume(&path).expect("resume journal");
    assert_eq!(journal.replay_len(), 2 * variants);
    assert_eq!(journal.skipped(), 1, "the torn tail record is skipped");
    let (resumed, stats) = run_sweep_journaled(&jobs, &cfg, Some(&journal));
    assert_eq!(stats.replayed, 2 * variants);
    assert_eq!(stats.executed, variants);
    assert_eq!(
        resumed.to_json(),
        clean,
        "resumed report diverges from the uninterrupted run"
    );
    // The deadlock cell retried once under the budget, and the attempt
    // log survives the report round-trip.
    assert!(resumed.to_json().contains("\"attempts\": 2"));

    // A second resume finds everything journaled and executes nothing.
    let journal = Journal::resume(&path).expect("resume journal");
    assert_eq!(journal.replay_len(), 3 * variants);
    let (replayed, stats) = run_sweep_journaled(&jobs, &cfg, Some(&journal));
    assert_eq!(stats.executed, 0);
    assert_eq!(stats.replayed, 3 * variants);
    assert_eq!(replayed.to_json(), clean);
    std::fs::remove_file(&path).ok();
}

/// The quarantine acceptance bar: the full 27-workload Table II matrix
/// under five variants (the bench matrix plus the IDEAL oracle) with one
/// job injected to panic on every attempt. The poison job's cells exhaust
/// their retry budget and land as `quarantined`; the other 130 runs
/// complete and match the reference; and the whole report — quarantine
/// details and per-attempt seeds included — is byte-identical across
/// worker-thread counts.
#[test]
fn quarantined_poison_job_leaves_the_rest_of_the_sweep_intact() {
    let mut jobs: Vec<SweepJob> = generate_all()
        .into_iter()
        .map(|w| SweepJob::new(w.spec.name, w.region, w.binding))
        .collect();
    assert_eq!(jobs.len(), 27, "Table II has 27 workloads");
    let victim = 11;
    let victim_name = jobs[victim].name.clone();
    jobs[victim].fault = FaultPlan::single(FaultSpec::new(FaultKind::PanicOnEvent, 0));

    let cfg = SweepConfig::default()
        .with_invocations(4)
        .with_variants(nachos::sweep::SweepVariant::bench_matrix())
        .with_ideal()
        .with_retries(2)
        .with_threads(4);
    assert_eq!(cfg.variants.len(), 5);

    let sweep = run_sweep(&jobs, &cfg);
    let statuses = sweep.statuses();
    assert_eq!(statuses.len(), 27 * 5);

    let quarantined: Vec<_> = statuses
        .iter()
        .filter(|(_, _, s)| *s == RunStatus::Quarantined)
        .collect();
    assert!(
        !quarantined.is_empty(),
        "the poison job must exhaust its retries into quarantine"
    );
    assert!(
        quarantined.iter().all(|(job, _, _)| *job == victim_name),
        "quarantine must not leak beyond the poison job: {quarantined:?}"
    );
    for (j, v, s) in &statuses {
        if *j != victim_name {
            assert_eq!(
                *s,
                RunStatus::Ok,
                "{j} [{v}]: poison job corrupted an unrelated run"
            );
        }
    }
    let ok = statuses
        .iter()
        .filter(|(_, _, s)| *s == RunStatus::Ok)
        .count();
    assert!(ok >= 130, "only {ok} of 135 runs completed");

    // Quarantined cells are reported — with their attempt history — not
    // silently dropped.
    let json = sweep.to_json();
    assert!(json.contains("\"status\": \"quarantined\""));
    assert!(json.contains("\"attempts\": 3"));
    assert!(json.contains("quarantined after 3 panicking attempts"));

    // Determinism: the same matrix on one thread reproduces the report
    // byte for byte, per-attempt seeds and all.
    let single = run_sweep(&jobs, &cfg.clone().with_threads(1));
    assert_eq!(single.to_json(), json);
}

/// The process-isolation acceptance bar: a sharded campaign whose worker
/// processes all die by SIGKILL — mid-shard, with a torn record and a
/// dangling `start` heartbeat in their journals, exactly what `kill -9`
/// leaves — must exhaust its respawn budget, hand the unfinished cells
/// to the inline pass, and still emit the uninterrupted single-process
/// report byte for byte.
#[test]
fn sigkilled_workers_resume_byte_identically() {
    let jobs = vec![job("gzip"), token_job("drop-token"), job("fft-2d")];
    let cfg = SweepConfig::default()
        .with_invocations(6)
        .with_retries(1)
        .with_threads(2);
    let cells = enumerate_cells(&jobs, &cfg);
    let clean = run_sweep(&jobs, &cfg).to_json();

    // A donor run supplies authentic journal records; the "crashed"
    // campaign completed only a prefix of them.
    let dir = tmp_path("sigkill-shard");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let donor_path = dir.join("donor.jsonl");
    {
        let donor = Journal::create(&donor_path).expect("create donor");
        let _ = run_sweep_journaled(&jobs, &cfg, Some(&donor));
    }
    let donor_lines: Vec<String> = std::fs::read_to_string(&donor_path)
        .expect("read donor")
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(donor_lines.len(), cells.len());
    let done = cells.len() / 2;

    let campaign = dir.join("campaign.jsonl");
    let sdir = shard_dir(&campaign);
    std::fs::create_dir_all(&sdir).expect("shard dir");
    let shards = 2usize;
    let mut contents: Vec<String> = vec![String::new(); shards];
    for (i, line) in donor_lines.iter().take(done).enumerate() {
        contents[i % shards].push_str(line);
        contents[i % shards].push('\n');
    }
    // The kill -9 residue: a torn half-record on one journal, a `start`
    // heartbeat with no matching record (the cell in flight at the time
    // of death) on the other.
    contents[0].push_str("f00dface00000000 {\"journal\": \"nachos-journal-v1\", \"key");
    let in_flight = cells[done];
    contents[1].push_str(
        &Heartbeat {
            seq: 99,
            phase: HeartbeatPhase::Start,
            cell: Some(in_flight.key),
        }
        .to_line(),
    );
    for (i, content) in contents.iter().enumerate() {
        std::fs::write(shard_journal_path(&sdir, i), content).expect("write shard journal");
    }

    // Every respawned worker dies by SIGKILL before reading its header.
    let mut scfg = ShardConfig::new(
        shards,
        vec!["/bin/sh".into(), "-c".into(), "kill -9 $$".into()],
        &campaign,
    );
    scfg.resume = true;
    scfg.max_respawns = 1;
    scfg.poll = Duration::from_millis(2);
    scfg.silence_budget = Duration::ZERO;
    let (sharded, sweep_stats, stats) =
        run_sweep_sharded(&jobs, &cfg, &scfg).expect("sharded sweep");
    assert_eq!(stats.recovered, done, "the completed prefix is absorbed");
    assert!(stats.respawns >= 1, "dead workers are respawned");
    assert_eq!(
        stats.quarantined, 0,
        "strikes stay under the default budget"
    );
    assert_eq!(stats.abandoned, cells.len() - done);
    assert_eq!(sweep_stats.executed, cells.len() - done);
    assert_eq!(
        sharded.to_json(),
        clean,
        "SIGKILL'd workers must not change a single report byte"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A hostile cell that kills every worker that touches it is quarantined
/// *by the supervisor* — attributed through the heartbeat trail, charged
/// a strike per dead worker, and parked with a deterministic record —
/// while every other cell completes normally.
#[test]
fn cell_that_kills_workers_is_quarantined_by_the_supervisor() {
    let jobs = vec![job("gzip"), job("fft-2d")];
    let mut cfg = SweepConfig::default().with_invocations(2);
    cfg.quarantine_after = 1;
    let cells = enumerate_cells(&jobs, &cfg);

    let dir = tmp_path("supervisor-quarantine");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let campaign = dir.join("campaign.jsonl");
    let sdir = shard_dir(&campaign);
    std::fs::create_dir_all(&sdir).expect("shard dir");

    // The hostile cell's shard journal holds its `start` heartbeat and
    // no record: the worker died executing it.
    let shards = 2usize;
    let victim = cells[0];
    std::fs::write(
        shard_journal_path(&sdir, shard_of(victim.key, shards)),
        Heartbeat {
            seq: 0,
            phase: HeartbeatPhase::Start,
            cell: Some(victim.key),
        }
        .to_line(),
    )
    .expect("write heartbeat");

    // Workers exit without completing anything, so the strike is charged
    // on the very first reap.
    let mut scfg = ShardConfig::new(shards, vec!["true".into()], &campaign);
    scfg.max_respawns = 0;
    scfg.poll = Duration::from_millis(2);
    scfg.silence_budget = Duration::ZERO;
    let (sharded, _, stats) = run_sweep_sharded(&jobs, &cfg, &scfg).expect("sharded sweep");
    assert_eq!(stats.quarantined, 1);
    assert_eq!(stats.abandoned, cells.len() - 1);

    let victim_job = jobs[victim.job].name.clone();
    let victim_variant = cfg.variants[victim.variant].label.clone();
    for (j, v, s) in sharded.statuses() {
        if j == victim_job && v == victim_variant {
            assert_eq!(s, RunStatus::Quarantined, "{j} [{v}]");
        } else {
            assert_eq!(s, RunStatus::Ok, "{j} [{v}]: quarantine must not leak");
        }
    }
    assert!(sharded
        .to_json()
        .contains("quarantined: cell killed or stalled 1 worker processes"));
    std::fs::remove_dir_all(&dir).ok();
}
