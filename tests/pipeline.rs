//! Cross-crate checks that the alias pipeline reproduces the paper's
//! per-stage structure on the Table II workloads (§V, §VIII-B).

use nachos_alias::{analyze, StageConfig};
use nachos_workloads::{by_name, generate, generate_all};

#[test]
fn stage1_perfect_workloads_need_no_further_analysis() {
    // §V-B: seven workloads are fully handled by Stage 1 alone.
    for name in [
        "gzip", "181.mcf", "429.mcf", "crafty", "sjeng", "blacks.", "ferret",
    ] {
        let w = generate(&by_name(name).unwrap());
        let a = analyze(&w.region, StageConfig::stage1_only());
        assert_eq!(
            a.report.after_stage1.may, 0,
            "{name}: Stage 1 should leave no MAY pairs"
        );
    }
}

#[test]
fn stage2_resolves_interprocedural_workloads() {
    // §V-C: provenance tracing converts MAY to NO where arguments trace
    // to distinct caller objects (parser, gcc, fluidanimate, ...).
    for name in ["parser", "gcc", "fluida."] {
        let w = generate(&by_name(name).unwrap());
        let without = analyze(&w.region, StageConfig::stage1_only());
        let with = analyze(&w.region, StageConfig::full());
        assert!(
            without.report.after_stage1.may > 0,
            "{name}: Stage 1 alone must leave MAY pairs"
        );
        assert!(
            with.report.stage2_refined > 0,
            "{name}: Stage 2 must refine"
        );
        assert_eq!(
            with.report.final_labels.may, 0,
            "{name}: fully resolved with Stage 2"
        );
    }
}

#[test]
fn stage4_resolves_multidim_workloads() {
    // §V-E: Polly-style analysis resolves all MAYs in exactly these five.
    for name in ["183.equake", "lbm", "namd", "bodytrack", "dwt53"] {
        let w = generate(&by_name(name).unwrap());
        let without = analyze(
            &w.region,
            StageConfig {
                stage2: true,
                stage3: true,
                stage4: false,
            },
        );
        let with = analyze(&w.region, StageConfig::full());
        assert!(
            without.report.final_labels.may > 0,
            "{name}: stages 1-3 must be insufficient"
        );
        assert!(
            with.report.stage4_refined > 0,
            "{name}: Stage 4 must refine"
        );
        assert_eq!(
            with.report.final_labels.may, 0,
            "{name}: Stage 4 resolves everything"
        );
    }
}

#[test]
fn stage3_prunes_redundant_relations() {
    // §V-D: overall about two thirds of relations need no explicit edge;
    // check that pruning removes a substantial fraction somewhere and
    // never changes labels.
    let mut any_pruned = false;
    for w in generate_all() {
        let unpruned = analyze(
            &w.region,
            StageConfig {
                stage2: true,
                stage3: false,
                stage4: true,
            },
        );
        let pruned = analyze(&w.region, StageConfig::full());
        assert_eq!(
            unpruned.report.final_labels, pruned.report.final_labels,
            "{}: stage 3 must not relabel",
            w.spec.name
        );
        assert!(
            pruned.plan.num_mdes() <= unpruned.plan.num_mdes(),
            "{}: pruning cannot add edges",
            w.spec.name
        );
        any_pruned |= pruned.report.pruned > 0;
    }
    assert!(
        any_pruned,
        "stage 3 should prune something across the suite"
    );
}

#[test]
fn fifteen_workloads_have_zero_may_mdes() {
    // §VIII-B Observation 1: NACHOS imposes no energy overhead in 15 of
    // 27 benchmarks — the compiler resolves every dependence.
    let clean = generate_all()
        .iter()
        .map(|w| analyze(&w.region, StageConfig::full()))
        .filter(|a| a.report.fully_resolved())
        .count();
    assert_eq!(clean, 15);
}

#[test]
fn bzip2_fanin_matches_figure14() {
    // Figure 14: three operations with ~50 older MAY parents.
    let w = generate(&by_name("401.bzip2").unwrap());
    let a = analyze(&w.region, StageConfig::full());
    let fanin = nachos_alias::may_fanin(&a);
    let hot: Vec<usize> = fanin.iter().copied().filter(|&f| f >= 30).collect();
    assert_eq!(hot.len(), 3, "three hot fan-in sites, got {fanin:?}");
    assert!(hot.iter().all(|&f| f >= 35), "each faces dozens of parents");
}

#[test]
fn labels_are_dynamically_sound() {
    // A pair labeled NO must never collide dynamically: evaluate every
    // address over a sample of invocations and cross-check.
    use nachos_alias::{AliasMatrix, Pair};
    for w in generate_all() {
        let a = analyze(&w.region, StageConfig::full());
        let matrix: &AliasMatrix = &a.matrix;
        let nest_total = w.region.loops.total_invocations().max(1);
        for inv in 0..16u64 {
            let iv = if w.region.loops.is_empty() {
                Vec::new()
            } else {
                w.region.loops.iteration_vector(inv % nest_total)
            };
            let unknowns = w.binding.unknown_values(inv);
            let ctx = w.binding.eval_ctx(&iv, &unknowns);
            let addrs: Vec<(u64, u8)> = matrix
                .ops()
                .iter()
                .map(|&n| {
                    let m = w.region.dfg.node(n).kind.mem_ref().unwrap();
                    (m.eval(&ctx), m.size)
                })
                .collect();
            for (pair, _, label) in matrix.pairs() {
                if label.is_no() {
                    let (a1, s1) = addrs[pair.older];
                    let (a2, s2) = addrs[pair.younger];
                    let overlap = a1 < a2 + u64::from(s2) && a2 < a1 + u64::from(s1);
                    assert!(
                        !overlap,
                        "{}: NO-labeled pair {:?} overlaps at invocation {inv}",
                        w.spec.name,
                        Pair {
                            older: pair.older,
                            younger: pair.younger
                        }
                    );
                }
            }
        }
    }
}
