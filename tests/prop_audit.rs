//! Property tests for the soundness auditor (`nachos_alias::audit`).
//!
//! Two directions, both required for the auditor to be trustworthy:
//!
//! * **No false alarms** — `compile()` on randomly generated regions
//!   followed by `audit()` must yield zero Error-severity diagnostics
//!   for every seed and every stage configuration. This is the standing
//!   regression net: any future pipeline change that emits an unsound
//!   NO, drops an ordering chain or drifts its bookkeeping fails here.
//! * **No missed bugs** — seeding a known bug into the compiled result
//!   (a hand-broken NO label, a hand-deleted ORDER edge) must produce an
//!   Error diagnostic, proving the net actually catches what it claims.
//!
//! The `nachos-opt` optimizer extends both directions: optimized random
//! regions must still audit clean (its `CertLint` pass re-verifying every
//! rewrite certificate), a seeded redundant ORDER edge must be removed
//! with a valid certificate, and any corruption of the certificate
//! ledger must be rejected as `A-E08`.

use nachos_alias::{
    audit, compile, differential_no_collisions, optimize, AliasLabel, Code, StageConfig,
};
use nachos_ir::{
    AffineExpr, Binding, EdgeKind, IntOp, LoopInfo, MemRef, Region, RegionBuilder, UnknownPattern,
};
use proptest::prelude::*;

/// Blueprint for one random memory operation (as in `prop_fault`).
#[derive(Clone, Debug)]
struct OpPlan {
    is_store: bool,
    /// 0..2 = globals, 2..4 = unknown pointers.
    target: usize,
    /// Slot within the object (small, so MUST and MAY pairs are common).
    slot: i64,
    strided: bool,
}

fn arb_op() -> impl Strategy<Value = OpPlan> {
    (any::<bool>(), 0usize..4, 0i64..3, any::<bool>()).prop_map(
        |(is_store, target, slot, strided)| OpPlan {
            is_store,
            target,
            slot,
            strided,
        },
    )
}

fn build(ops: &[OpPlan]) -> (Region, Binding) {
    let mut b = RegionBuilder::new("prop-audit");
    let i = b.enclosing_loop(LoopInfo::range("i", 0, 4));
    let g0 = b.global("g0", 4096, 0);
    let g1 = b.global("g1", 4096, 1);
    let u0 = b.unknown_ptr();
    let u1 = b.unknown_ptr();
    let x = b.input();
    let mut carried = x;
    for plan in ops {
        let node = if plan.target < 2 {
            let base = if plan.target == 0 { g0 } else { g1 };
            let mut off = AffineExpr::constant_expr(plan.slot * 8);
            if plan.strided {
                off = off.add(&AffineExpr::var(i).scaled(8));
            }
            let mref = MemRef::affine(base, off);
            if plan.is_store {
                b.store(mref, &[carried])
            } else {
                b.load(mref, &[])
            }
        } else {
            let u = if plan.target == 2 { u0 } else { u1 };
            let mref = MemRef::unknown(u, plan.slot * 8);
            if plan.is_store {
                b.store(mref, &[carried])
            } else {
                b.load(mref, &[])
            }
        };
        if !plan.is_store {
            carried = b.int_op(IntOp::Add, &[node, carried]);
        }
    }
    b.output(carried);
    let region = b.finish();
    let binding = Binding {
        base_addrs: vec![0x1000, 0x2000],
        params: Vec::new(),
        unknowns: vec![
            UnknownPattern::Scatter {
                seed: 5,
                lo: 0x3000,
                hi: 0x3020,
                align: 8,
            },
            UnknownPattern::Stride {
                base: 0x3000,
                step: 8,
            },
        ],
    };
    (region, binding)
}

fn all_configs() -> [StageConfig; 4] {
    [
        StageConfig::full(),
        StageConfig::baseline(),
        StageConfig::stage1_only(),
        StageConfig {
            stage2: true,
            stage3: false,
            stage4: true,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The standing soundness net: the unmodified pipeline never earns an
    /// Error diagnostic, under any stage configuration, and its NO pairs
    /// never collide in a dynamic replay.
    #[test]
    fn compiled_regions_audit_clean(
        ops in proptest::collection::vec(arb_op(), 1..12),
    ) {
        for stages in all_configs() {
            let (mut region, binding) = build(&ops);
            let analysis = compile(&mut region, stages);
            let errors: Vec<_> = audit(&region, &analysis, stages)
                .into_iter()
                .filter(|d| d.is_error())
                .collect();
            prop_assert!(
                errors.is_empty(),
                "unmodified pipeline earned errors under {:?}: {:?}",
                stages,
                errors
            );
            let collisions =
                differential_no_collisions(&region, &analysis.matrix, &binding, 8);
            prop_assert!(
                collisions.is_empty(),
                "NO pair collided dynamically: {:?}",
                collisions
            );
        }
    }

    /// Seeded bug, direction 1: flipping any MUST verdict to NO must be
    /// flagged as an unsound NO (every pipeline MUST comes from decidable
    /// reasoning the auditor re-derives exactly).
    #[test]
    fn broken_no_label_is_always_caught(
        ops in proptest::collection::vec(arb_op(), 2..12),
    ) {
        let (mut region, _) = build(&ops);
        let mut analysis = compile(&mut region, StageConfig::full());
        let must_pair = analysis
            .matrix
            .pairs()
            .find(|(_, _, label)| label.is_must())
            .map(|(pair, _, _)| pair);
        // Not every random region has a MUST pair; skip those cases (the
        // vendored proptest has no prop_assume).
        let Some(pair) = must_pair else { continue };
        analysis.matrix.set(pair, AliasLabel::No);
        let diags = audit(&region, &analysis, StageConfig::full());
        prop_assert!(
            diags.iter().any(|d| d.code == Code::UnsoundNo),
            "hand-broken NO survived the audit: {:?}",
            diags
        );
    }

    /// Seeded bug, direction 2: deleting any planned ORDER edge from the
    /// final DFG must be flagged (as a hardware race, or as plan/DFG
    /// drift when the chain survives through other edges).
    #[test]
    fn deleted_order_edge_is_always_caught(
        ops in proptest::collection::vec(arb_op(), 2..12),
        pick in 0usize..64,
    ) {
        let (mut region, _) = build(&ops);
        let analysis = compile(&mut region, StageConfig::full());
        let order_indices: Vec<usize> = region
            .dfg
            .edges()
            .enumerate()
            .filter(|(_, e)| e.kind == EdgeKind::Order)
            .map(|(i, _)| i)
            .collect();
        if order_indices.is_empty() {
            continue;
        }
        region
            .dfg
            .remove_edge_unchecked(order_indices[pick % order_indices.len()]);
        let errors: Vec<_> = audit(&region, &analysis, StageConfig::full())
            .into_iter()
            .filter(|d| d.is_error())
            .collect();
        prop_assert!(
            errors
                .iter()
                .any(|d| d.code == Code::MissingChain || d.code == Code::PlanDrift),
            "deleted ORDER edge survived the audit"
        );
    }

    /// The optimizer's soundness net: rewriting random regions never
    /// earns an Error diagnostic under any ablation — `CertLint` accepts
    /// every certificate the optimizer emits — and the surviving NO
    /// pairs (including stage-5 upgrades) never collide dynamically.
    #[test]
    fn optimized_regions_audit_clean(
        ops in proptest::collection::vec(arb_op(), 1..12),
    ) {
        for stages in all_configs() {
            let (mut region, binding) = build(&ops);
            let mut analysis = compile(&mut region, stages);
            optimize(&mut region, &mut analysis);
            let errors: Vec<_> = audit(&region, &analysis, stages)
                .into_iter()
                .filter(|d| d.is_error())
                .collect();
            prop_assert!(
                errors.is_empty(),
                "optimized pipeline earned errors under {:?}: {:?}",
                stages,
                errors
            );
            let collisions =
                differential_no_collisions(&region, &analysis.matrix, &binding, 8);
            prop_assert!(
                collisions.is_empty(),
                "optimized NO pair collided dynamically: {:?}",
                collisions
            );
        }
    }

    /// Seeded redundancy: re-adding a transitively implied ORDER edge
    /// (`a → c` alongside planned `a → b → c`) must be deleted by the
    /// reduction with a certificate the audit then verifies.
    #[test]
    fn seeded_redundant_order_edge_is_removed_and_certified(
        ops in proptest::collection::vec(arb_op(), 2..12),
    ) {
        let (mut region, _) = build(&ops);
        let mut analysis = compile(&mut region, StageConfig::full());
        // Find a planned two-hop chain a → b → c with no direct a → c.
        let order = analysis.plan.order.clone();
        let seeded = order.iter().find_map(|&(a, b)| {
            order.iter().find_map(|&(b2, c)| {
                (b2 == b && c != a && !order.contains(&(a, c))).then_some((a, c))
            })
        });
        let Some((a, c)) = seeded else { continue };
        if region.dfg.add_edge(a, c, EdgeKind::Order).is_err() {
            continue;
        }
        analysis.plan.order.push((a, c));
        analysis.report.mdes.0 += 1;
        optimize(&mut region, &mut analysis);
        let opt = analysis.opt.as_ref().expect("optimizer records an outcome");
        prop_assert!(
            opt.stats.order_removed >= 1,
            "seeded redundant ORDER edge survived: {:?}",
            analysis.plan.order
        );
        prop_assert!(!analysis.plan.order.contains(&(a, c)));
        let errors: Vec<_> = audit(&region, &analysis, StageConfig::full())
            .into_iter()
            .filter(|d| d.is_error())
            .collect();
        prop_assert!(errors.is_empty(), "reduction left errors: {errors:?}");
    }

    /// Seeded corruption: dropping any certificate, or inflating any
    /// ledger count, must be rejected by `CertLint` as `A-E08` — for
    /// every seed that produces at least one rewrite.
    #[test]
    fn corrupted_certificates_are_always_rejected(
        ops in proptest::collection::vec(arb_op(), 2..12),
        tamper in 0usize..3,
    ) {
        let (mut region, _) = build(&ops);
        let mut analysis = compile(&mut region, StageConfig::full());
        optimize(&mut region, &mut analysis);
        {
            let opt = analysis.opt.as_mut().expect("optimizer records an outcome");
            if opt.certs.is_empty() {
                continue;
            }
            match tamper {
                0 => drop(opt.certs.pop()),
                1 => opt.stats.order_removed += 1,
                _ => opt.stats.may_coalesced += 1,
            }
        }
        let diags = audit(&region, &analysis, StageConfig::full());
        prop_assert!(
            diags.iter().any(|d| d.code == Code::BadCertificate),
            "tampered certificate ledger (mode {tamper}) survived: {diags:?}"
        );
    }
}
