//! Property: shard-merge is invariant to how records reached the shards.
//!
//! A sharded campaign's shard journals are a scheduling accident: which
//! worker completed a cell, in what order, under which shard count, and
//! whether a crash-respawn left benign duplicate records are all
//! invisible to the final report. Resuming a supervisor over *any*
//! scattering of the same records — across any number of shard journal
//! files, in any order, with heartbeats interleaved and records
//! duplicated — must absorb every cell and reproduce the single-process
//! report byte for byte. And a flipped byte in any shard journal must
//! never panic or corrupt the report: the damaged record is dropped,
//! counted, and its cell re-executed.

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

use nachos::sweep::heartbeat::{Heartbeat, HeartbeatPhase};
use nachos::sweep::journal::Journal;
use nachos::sweep::shard::{run_sweep_sharded, shard_dir, shard_journal_path, ShardConfig};
use nachos::sweep::{run_sweep, run_sweep_journaled, SweepConfig, SweepJob};
use nachos::{Backend, FaultKind, FaultPlan, FaultSpec};
use nachos_ir::{AffineExpr, Binding, IntOp, MemRef, RegionBuilder};
use nachos_workloads::{by_name, generate};
use proptest::prelude::*;

/// Shared fixture: the jobs, the uninterrupted report, and the journal
/// record lines a complete run leaves behind. Built once — every case
/// only re-scatters the lines and resumes a supervisor over them.
struct Fixture {
    jobs: Vec<SweepJob>,
    cfg: SweepConfig,
    clean_json: String,
    lines: Vec<String>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut jobs = Vec::new();
        for name in ["gzip", "fft-2d"] {
            let w = generate(&by_name(name).expect("workload"));
            jobs.push(SweepJob::new(w.spec.name, w.region, w.binding));
        }
        // One transient cell (a retried deadlock) so multi-attempt logs
        // are part of what the scattering must preserve.
        let mut b = RegionBuilder::new("drop-token");
        let g = b.global("g", 64, 0);
        let m = MemRef::affine(g, AffineExpr::zero());
        let x = b.input();
        b.store(m.clone(), &[x]);
        let y = b.int_op(IntOp::Add, &[x]);
        b.store(m, &[y]);
        jobs.push(
            SweepJob::new(
                "drop-token",
                b.finish(),
                Binding {
                    base_addrs: vec![0x1_0000],
                    ..Binding::default()
                },
            )
            .with_fault(FaultPlan::single(
                FaultSpec::new(FaultKind::DropToken, 0).on_backend(Backend::NachosSw),
            )),
        );
        let cfg = SweepConfig::default()
            .with_invocations(4)
            .with_retries(1)
            .with_threads(1);
        let clean_json = run_sweep(&jobs, &cfg).to_json();

        let path = scratch("seed").join("donor.jsonl");
        let journal = Journal::create(&path).expect("create journal");
        let _ = run_sweep_journaled(&jobs, &cfg, Some(&journal));
        drop(journal);
        let lines: Vec<String> = std::fs::read_to_string(&path)
            .expect("read journal")
            .lines()
            .map(str::to_owned)
            .collect();
        assert_eq!(lines.len(), 3 * cfg.variants.len());
        Fixture {
            jobs,
            cfg,
            clean_json,
            lines,
        }
    })
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nachos-prop-shard").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Fisher–Yates driven by a splitmix64 stream from the case's seed.
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    let mut next = || {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..items.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

/// Scatters `lines` round-robin across `files` shard journals under the
/// campaign's shard dir, interleaving an `alive` heartbeat before every
/// record the way a real worker does.
fn scatter(campaign: &std::path::Path, lines: &[String], files: usize) {
    let dir = shard_dir(campaign);
    std::fs::create_dir_all(&dir).expect("shard dir");
    let mut contents: Vec<String> = vec![String::new(); files.max(1)];
    for (i, line) in lines.iter().enumerate() {
        let slot = &mut contents[i % files.max(1)];
        slot.push_str(
            &Heartbeat {
                seq: i as u64,
                phase: HeartbeatPhase::Alive,
                cell: None,
            }
            .to_line(),
        );
        slot.push_str(line);
        slot.push('\n');
    }
    for (i, content) in contents.iter().enumerate() {
        std::fs::write(shard_journal_path(&dir, i), content).expect("write shard journal");
    }
}

/// A supervisor config whose workers can never do real work (`true`
/// exits without reading a cell), so everything the report contains
/// came from the scattered records or the inline final pass.
fn inert_supervisor(shards: usize, campaign: &std::path::Path) -> ShardConfig {
    let mut scfg = ShardConfig::new(shards, vec!["true".into()], campaign);
    scfg.resume = true;
    scfg.max_respawns = 0;
    scfg.poll = Duration::from_millis(2);
    scfg.silence_budget = Duration::ZERO;
    scfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any scattering of the campaign's records — across any file count,
    /// in any order, with one record duplicated as a crash-respawn can
    /// leave — resumes to the uninterrupted report without dispatching
    /// a single cell.
    #[test]
    fn merge_is_invariant_to_shard_count_order_and_duplicates(
        seed in any::<u64>(),
        scatter_files in 1usize..6,
        resume_shards in 1usize..6,
        dup in 0usize..32,
    ) {
        let fx = fixture();
        let mut lines = fx.lines.clone();
        let dup_line = lines[dup % lines.len()].clone();
        lines.push(dup_line);
        shuffle(&mut lines, seed);

        let dir = scratch(&format!("merge-{seed:016x}-{scatter_files}-{resume_shards}-{dup}"));
        let campaign = dir.join("campaign.jsonl");
        scatter(&campaign, &lines, scatter_files);

        let scfg = inert_supervisor(resume_shards, &campaign);
        let (sharded, sweep_stats, stats) =
            run_sweep_sharded(&fx.jobs, &fx.cfg, &scfg).expect("sharded sweep");
        prop_assert_eq!(stats.recovered, fx.lines.len(), "duplicates absorb once");
        prop_assert_eq!(stats.workers_spawned, 0, "nothing left to dispatch");
        prop_assert_eq!(stats.corrupt_lines, 0);
        prop_assert_eq!(sweep_stats.executed, 0);
        prop_assert_eq!(sharded.to_json(), fx.clean_json.clone());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A flipped byte in any record of any shard journal never panics
    /// and never reaches the report: the record fails its checksum
    /// frame, is dropped and counted, and the orphaned cell re-executes
    /// in the inline pass — the report stays byte-identical.
    #[test]
    fn flipped_byte_in_a_shard_journal_drops_one_record_and_reexecutes(
        seed in any::<u64>(),
        scatter_files in 1usize..4,
        victim in 0usize..32,
        pos_seed in 0usize..1024,
    ) {
        let fx = fixture();
        let mut lines = fx.lines.clone();
        shuffle(&mut lines, seed);
        // Flip one byte inside the victim record's payload (past the
        // 16-hex checksum + space frame prefix). XOR 0x01 on printable
        // JSON never produces a newline, so exactly one line is hit.
        let victim = victim % lines.len();
        let mut bytes = std::mem::take(&mut lines[victim]).into_bytes();
        let pos = 20 + pos_seed % (bytes.len() - 20);
        bytes[pos] ^= 0x01;
        lines[victim] = String::from_utf8(bytes).expect("ASCII stays ASCII");

        let dir = scratch(&format!("flip-{seed:016x}-{scatter_files}-{victim}-{pos_seed}"));
        let campaign = dir.join("campaign.jsonl");
        scatter(&campaign, &lines, scatter_files);

        let scfg = inert_supervisor(scatter_files, &campaign);
        let (sharded, sweep_stats, stats) =
            run_sweep_sharded(&fx.jobs, &fx.cfg, &scfg).expect("sharded sweep");
        prop_assert_eq!(stats.corrupt_lines, 1, "the flipped record is counted");
        prop_assert_eq!(stats.recovered, fx.lines.len() - 1);
        prop_assert_eq!(stats.abandoned, 1, "inert workers hand the cell to the inline pass");
        prop_assert_eq!(sweep_stats.executed, 1, "the damaged cell re-executes");
        prop_assert_eq!(sharded.to_json(), fx.clean_json.clone());
        std::fs::remove_dir_all(&dir).ok();
    }
}
