//! Property tests for the `nachos-opt` MDE optimizer: on random regions,
//! optimized and unoptimized compilations must be *observationally
//! equivalent* — every run still matches the in-order reference executor
//! under the differential sweep, and with/without runs of the same MDE
//! backend load identical value streams and leave identical final memory.
//!
//! The optimizer may only ever delete provably redundant ordering, so it
//! must also never *add* runtime work: comparator sites and cycle counts
//! are checked monotone non-increasing per backend.

use nachos::sweep::{run_sweep, SweepConfig, SweepJob, SweepVariant};
use nachos::testutil::{build_plan_region, OpPlan};
use nachos::{run_backend, Backend, EnergyModel, ExperimentRun, SimConfig};
use nachos_ir::{Binding, Region};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = OpPlan> {
    (any::<bool>(), 0usize..5, 0i64..4, any::<bool>()).prop_map(
        |(is_store, target, slot, strided)| OpPlan {
            is_store,
            target,
            slot,
            strided,
        },
    )
}

fn run(region: &Region, binding: &Binding, backend: Backend, optimize: bool) -> ExperimentRun {
    let cfg = SimConfig::default()
        .with_invocations(6)
        .with_optimize(optimize);
    run_backend(region, binding, backend, &cfg, &EnergyModel::default())
        .expect("simulation succeeds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The differential sweep accepts optimized compilations of random
    /// regions exactly as it accepts unoptimized ones: every variant
    /// completes and matches the reference executor.
    #[test]
    fn optimized_sweep_matches_reference(
        ops in proptest::collection::vec(arb_op(), 1..10),
    ) {
        let (region, binding) = build_plan_region(&ops);
        let job = SweepJob::new("prop-opt", region, binding);
        for optimize in [false, true] {
            let cfg = SweepConfig::default()
                .with_invocations(6)
                .with_threads(1)
                .with_variants(SweepVariant::bench_matrix())
                .with_optimize(optimize);
            let sweep = run_sweep(std::slice::from_ref(&job), &cfg);
            prop_assert!(
                sweep.all_match(),
                "sweep (optimize: {optimize}) diverged: {:?} (ops: {ops:?})",
                sweep.mismatches()
            );
        }
    }

    /// With/without runs of the same MDE backend are value-equivalent
    /// (identical load digests, identical final memory) and the
    /// optimizer never adds runtime work: comparator sites and cycles
    /// are monotone non-increasing.
    #[test]
    fn optimized_runs_are_value_equivalent_and_no_slower(
        ops in proptest::collection::vec(arb_op(), 1..10),
    ) {
        let (region, binding) = build_plan_region(&ops);
        for backend in [Backend::NachosSw, Backend::Nachos] {
            let plain = run(&region, &binding, backend, false);
            let opt = run(&region, &binding, backend, true);
            prop_assert_eq!(
                plain.sim.loads.digest(),
                opt.sim.loads.digest(),
                "{} load stream changed under the optimizer (ops: {:?})",
                backend,
                &ops
            );
            prop_assert!(
                plain.sim.mem == opt.sim.mem,
                "{backend} final memory changed under the optimizer (ops: {ops:?})"
            );
            prop_assert!(
                opt.sim.comparator_sites <= plain.sim.comparator_sites,
                "{backend} comparator sites grew: {} -> {} (ops: {ops:?})",
                plain.sim.comparator_sites,
                opt.sim.comparator_sites
            );
            prop_assert!(
                opt.sim.cycles <= plain.sim.cycles,
                "{backend} regressed: {} -> {} cycles (ops: {ops:?})",
                plain.sim.cycles,
                opt.sim.cycles
            );
        }
    }
}
