//! The central correctness property of the whole system: for every
//! Table II workload and every disambiguation backend, the final memory
//! state and every load's observed value equal those of a sequential
//! in-order execution.

use nachos::{reference, run_all_backends, EnergyModel, SimConfig};
use nachos_workloads::generate_all;

#[test]
fn all_workloads_all_backends_match_reference() {
    let config = SimConfig::default().with_invocations(12);
    let energy = EnergyModel::default();
    for w in generate_all() {
        let expected = reference::execute(&w.region, &w.binding, config.invocations);
        let runs = run_all_backends(&w.region, &w.binding, &config, &energy)
            .unwrap_or_else(|e| panic!("{}: {e}", w.spec.name));
        for run in &runs {
            assert_eq!(
                run.sim.mem, expected.mem,
                "{} under {}: final memory state diverged",
                w.spec.name, run.sim.backend
            );
            assert_eq!(
                run.sim.loads.digest(),
                expected.loads.digest(),
                "{} under {}: load observations diverged",
                w.spec.name,
                run.sim.backend
            );
        }
    }
}

#[test]
fn secondary_paths_also_preserve_ordering() {
    let config = SimConfig::default().with_invocations(6);
    let energy = EnergyModel::default();
    for spec in nachos_workloads::all() {
        for path in [1u32, 3] {
            let w = nachos_workloads::generate_path(&spec, path);
            let expected = reference::execute(&w.region, &w.binding, config.invocations);
            let runs = run_all_backends(&w.region, &w.binding, &config, &energy)
                .unwrap_or_else(|e| panic!("{}.p{path}: {e}", spec.name));
            for run in &runs {
                assert_eq!(
                    run.sim.loads.digest(),
                    expected.loads.digest(),
                    "{}.p{path} under {}: load observations diverged",
                    spec.name,
                    run.sim.backend
                );
            }
        }
    }
}
