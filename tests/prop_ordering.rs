//! Property test for the central system invariant: random regions with
//! random aliasing, under every backend, must reproduce the in-order
//! reference execution exactly.
//!
//! The region blueprints ([`OpPlan`] and its builders) live in
//! [`nachos::testutil`], shared with the engine's unit tests and the
//! monotonicity property suite.

use nachos::testutil::{build_plan_region, build_plan_region_with_scratchpad, OpPlan};
use nachos::{reference, run_all_backends, EnergyModel, SimConfig};
use nachos_ir::{Binding, Region};
use proptest::prelude::*;

fn arb_op(targets: usize) -> impl Strategy<Value = OpPlan> {
    (any::<bool>(), 0..targets, 0i64..4, any::<bool>()).prop_map(
        |(is_store, target, slot, strided)| OpPlan {
            is_store,
            target,
            slot,
            strided,
        },
    )
}

fn assert_all_backends_match(region: &Region, binding: &Binding, ops: &[OpPlan]) {
    let config = SimConfig::default().with_invocations(6);
    let expected = reference::execute(region, binding, config.invocations);
    let runs = run_all_backends(region, binding, &config, &EnergyModel::default())
        .expect("simulation succeeds");
    for run in &runs {
        assert_eq!(
            &run.sim.mem, &expected.mem,
            "{} diverged from the in-order reference (ops: {:?})",
            run.sim.backend, ops
        );
        assert_eq!(
            run.sim.loads.digest(),
            expected.loads.digest(),
            "{} load values diverged (ops: {:?})",
            run.sim.backend,
            ops
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_regions_preserve_sequential_semantics(
        ops in proptest::collection::vec(arb_op(5), 1..14)
    ) {
        let (region, binding) = build_plan_region(&ops);
        let config = SimConfig::default().with_invocations(6);
        let expected = reference::execute(&region, &binding, config.invocations);
        let runs = run_all_backends(&region, &binding, &config, &EnergyModel::default())
            .expect("simulation succeeds");
        for run in &runs {
            prop_assert_eq!(
                &run.sim.mem, &expected.mem,
                "{} diverged from the in-order reference (ops: {:?})",
                run.sim.backend, ops
            );
            prop_assert_eq!(
                run.sim.loads.digest(), expected.loads.digest(),
                "{} load values diverged (ops: {:?})",
                run.sim.backend, ops
            );
        }
    }

    /// Same invariant with scratchpad operations in the mix and both
    /// unknown pointers scattering: local (LSQ-free, cache-free) traffic
    /// must interleave correctly with checked global traffic.
    #[test]
    fn scratchpad_and_scatter_regions_preserve_sequential_semantics(
        ops in proptest::collection::vec(arb_op(6), 1..14)
    ) {
        let (region, binding) = build_plan_region_with_scratchpad(&ops);
        assert_all_backends_match(&region, &binding, &ops);
    }
}
