//! Property test for the central system invariant: random regions with
//! random aliasing, under every backend, must reproduce the in-order
//! reference execution exactly.

use nachos::{reference, run_all_backends, EnergyModel, SimConfig};
use nachos_ir::{
    AffineExpr, Binding, IntOp, LoopInfo, MemRef, MemSpace, Provenance, Region, RegionBuilder,
    UnknownPattern,
};
use proptest::prelude::*;

/// Blueprint for one random memory operation.
#[derive(Clone, Debug)]
struct OpPlan {
    is_store: bool,
    /// Which object it targets: 0..3 = globals/args, 3..5 = unknowns.
    target: usize,
    /// Slot within the object (small so collisions are common).
    slot: i64,
    /// Whether the op is strided by the loop IV.
    strided: bool,
}

fn arb_op() -> impl Strategy<Value = OpPlan> {
    (any::<bool>(), 0usize..5, 0i64..4, any::<bool>()).prop_map(
        |(is_store, target, slot, strided)| OpPlan {
            is_store,
            target,
            slot,
            strided,
        },
    )
}

fn build(ops: &[OpPlan]) -> (Region, Binding) {
    let mut b = RegionBuilder::new("prop");
    let i = b.enclosing_loop(LoopInfo::range("i", 0, 4));
    let g0 = b.global("g0", 4096, 0);
    let g1 = b.global("g1", 4096, 1);
    let a0 = b.arg(0, Provenance::Object(7));
    let u0 = b.unknown_ptr();
    let u1 = b.unknown_ptr();
    let bases = [g0, g1, a0];
    let x = b.input();
    let mut carried = x;
    for plan in ops {
        let node = if plan.target < 3 {
            let mut off = AffineExpr::constant_expr(plan.slot * 8);
            if plan.strided {
                off = off.add(&AffineExpr::var(i).scaled(8));
            }
            let mref = MemRef::affine(bases[plan.target], off);
            if plan.is_store {
                b.store(mref, &[carried])
            } else {
                b.load(mref, &[])
            }
        } else {
            let u = if plan.target == 3 { u0 } else { u1 };
            let mref = MemRef::unknown(u, plan.slot * 8);
            if plan.is_store {
                b.store(mref, &[carried])
            } else {
                b.load(mref, &[])
            }
        };
        if !plan.is_store {
            carried = b.int_op(IntOp::Add, &[node, carried]);
        }
    }
    b.output(carried);
    let region = b.finish();
    let binding = Binding {
        base_addrs: vec![0x1000, 0x2000, 0x3000],
        params: Vec::new(),
        // Overlapping windows covering the globals: real conflicts occur.
        unknowns: vec![
            UnknownPattern::Scatter {
                seed: 11,
                lo: 0x1000,
                hi: 0x1040,
                align: 8,
            },
            UnknownPattern::Stride {
                base: 0x2000,
                step: 8,
            },
        ],
    };
    (region, binding)
}

/// Like [`build`], but target 5 is a scratchpad object (bypasses the LSQ
/// and the cache in every scheme) and the unknown windows scatter across
/// the global footprint, so LSQ-tracked, MAY-checked and local traffic
/// interleave in one region.
fn build_with_scratchpad(ops: &[OpPlan]) -> (Region, Binding) {
    let mut b = RegionBuilder::new("prop-sp");
    let i = b.enclosing_loop(LoopInfo::range("i", 0, 4));
    let g0 = b.global("g0", 4096, 0);
    let g1 = b.global("g1", 4096, 1);
    let a0 = b.arg(0, Provenance::Object(7));
    let sp = b.global("sp", 256, 3);
    let u0 = b.unknown_ptr();
    let u1 = b.unknown_ptr();
    let bases = [g0, g1, a0];
    let x = b.input();
    let mut carried = x;
    for plan in ops {
        let node = if plan.target < 3 {
            let mut off = AffineExpr::constant_expr(plan.slot * 8);
            if plan.strided {
                off = off.add(&AffineExpr::var(i).scaled(8));
            }
            let mref = MemRef::affine(bases[plan.target], off);
            if plan.is_store {
                b.store(mref, &[carried])
            } else {
                b.load(mref, &[])
            }
        } else if plan.target < 5 {
            let u = if plan.target == 3 { u0 } else { u1 };
            let mref = MemRef::unknown(u, plan.slot * 8);
            if plan.is_store {
                b.store(mref, &[carried])
            } else {
                b.load(mref, &[])
            }
        } else {
            let mut off = AffineExpr::constant_expr(plan.slot * 8);
            if plan.strided {
                off = off.add(&AffineExpr::var(i).scaled(8));
            }
            let mref = MemRef::affine(sp, off).with_space(MemSpace::Scratchpad);
            if plan.is_store {
                b.store(mref, &[carried])
            } else {
                b.load(mref, &[])
            }
        };
        if !plan.is_store {
            carried = b.int_op(IntOp::Add, &[node, carried]);
        }
    }
    b.output(carried);
    let region = b.finish();
    let binding = Binding {
        base_addrs: vec![0x1000, 0x2000, 0x3000, 0x2_0000],
        params: Vec::new(),
        unknowns: vec![
            UnknownPattern::Scatter {
                seed: 21,
                lo: 0x1000,
                hi: 0x1040,
                align: 8,
            },
            UnknownPattern::Scatter {
                seed: 22,
                lo: 0x2000,
                hi: 0x2040,
                align: 8,
            },
        ],
    };
    (region, binding)
}

fn assert_all_backends_match(region: &Region, binding: &Binding, ops: &[OpPlan]) {
    let config = SimConfig::default().with_invocations(6);
    let expected = reference::execute(region, binding, config.invocations);
    let runs = run_all_backends(region, binding, &config, &EnergyModel::default())
        .expect("simulation succeeds");
    for run in &runs {
        assert_eq!(
            &run.sim.mem, &expected.mem,
            "{} diverged from the in-order reference (ops: {:?})",
            run.sim.backend, ops
        );
        assert_eq!(
            run.sim.loads.digest(),
            expected.loads.digest(),
            "{} load values diverged (ops: {:?})",
            run.sim.backend,
            ops
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_regions_preserve_sequential_semantics(
        ops in proptest::collection::vec(arb_op(), 1..14)
    ) {
        let (region, binding) = build(&ops);
        let config = SimConfig::default().with_invocations(6);
        let expected = reference::execute(&region, &binding, config.invocations);
        let runs = run_all_backends(&region, &binding, &config, &EnergyModel::default())
            .expect("simulation succeeds");
        for run in &runs {
            prop_assert_eq!(
                &run.sim.mem, &expected.mem,
                "{} diverged from the in-order reference (ops: {:?})",
                run.sim.backend, ops
            );
            prop_assert_eq!(
                run.sim.loads.digest(), expected.loads.digest(),
                "{} load values diverged (ops: {:?})",
                run.sim.backend, ops
            );
        }
    }

    /// Same invariant with scratchpad operations in the mix and both
    /// unknown pointers scattering: local (LSQ-free, cache-free) traffic
    /// must interleave correctly with checked global traffic.
    #[test]
    fn scratchpad_and_scatter_regions_preserve_sequential_semantics(
        ops in proptest::collection::vec(
            (any::<bool>(), 0usize..6, 0i64..4, any::<bool>()).prop_map(
                |(is_store, target, slot, strided)| OpPlan { is_store, target, slot, strided }
            ),
            1..14
        )
    ) {
        let (region, binding) = build_with_scratchpad(&ops);
        assert_all_backends_match(&region, &binding, &ops);
    }
}
