//! Property tests for the affine dependence tester: every verdict the
//! interval+GCD test produces must agree with exhaustive enumeration of
//! the iteration box.

use nachos_alias::afftest::{overlap_oracle, overlap_test, IvBox, Overlap};
use nachos_ir::{AffineExpr, LoopId};
use proptest::prelude::*;

fn arb_expr_and_box() -> impl Strategy<Value = (AffineExpr, IvBox)> {
    // Up to 3 induction variables with small coefficients and bounds so
    // the oracle stays cheap.
    let term = (0usize..3, -32i64..=32);
    (
        proptest::collection::vec(term, 0..=3),
        -256i64..=256,
        proptest::collection::vec((-8i64..=8, 0i64..=12), 3),
    )
        .prop_map(|(terms, constant, ranges)| {
            let terms: Vec<(LoopId, i64)> = terms
                .into_iter()
                .map(|(l, c)| (LoopId::new(l), c))
                .collect();
            let expr = AffineExpr::from_terms(&terms, constant);
            let bounds = ranges
                .into_iter()
                .map(|(lo, span)| (lo, lo + span))
                .collect();
            (expr, IvBox::from_bounds(bounds))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Soundness: a `Disjoint` verdict must never contradict an actual
    /// overlap, `Exact`/`Partial` must hold on every point.
    #[test]
    fn overlap_test_is_sound((delta, bx) in arb_expr_and_box(),
                             size_a in prop::sample::select(vec![1u32, 2, 4, 8]),
                             size_b in prop::sample::select(vec![1u32, 2, 4, 8])) {
        let verdict = overlap_test(&delta, &bx, size_a, size_b);
        let truth = overlap_oracle(&delta, &bx, size_a, size_b);
        match verdict {
            Overlap::Disjoint => prop_assert_eq!(truth, Overlap::Disjoint),
            Overlap::Exact => prop_assert_eq!(truth, Overlap::Exact),
            Overlap::Partial => prop_assert!(
                truth == Overlap::Partial || truth == Overlap::Exact,
                "claimed always-overlap but truth is {truth:?}"
            ),
            Overlap::Unknown => {} // giving up is always allowed
        }
    }

    /// Completeness on single-variable differences: the interval+GCD test
    /// decides every single-IV case exactly (it only says Unknown when
    /// the truth really is mixed).
    #[test]
    fn single_iv_is_exact(coeff in -32i64..=32, constant in -256i64..=256,
                          lo in -8i64..=8, span in 0i64..=12,
                          size in prop::sample::select(vec![1u32, 2, 4, 8])) {
        let delta = AffineExpr::from_terms(&[(LoopId::new(0), coeff)], constant);
        let bx = IvBox::from_bounds(vec![(lo, lo + span)]);
        let verdict = overlap_test(&delta, &bx, size, size);
        let truth = overlap_oracle(&delta, &bx, size, size);
        if verdict == Overlap::Unknown {
            prop_assert_eq!(truth, Overlap::Unknown,
                "test gave up on a decidable single-IV case");
        }
    }

    /// The verdict is invariant under swapping the two accesses
    /// (with the delta negated and sizes exchanged).
    #[test]
    fn overlap_test_is_symmetric((delta, bx) in arb_expr_and_box(),
                                 size_a in prop::sample::select(vec![1u32, 4, 8]),
                                 size_b in prop::sample::select(vec![1u32, 4, 8])) {
        let forward = overlap_test(&delta, &bx, size_a, size_b);
        let backward = overlap_test(&delta.clone().scaled(-1), &bx, size_b, size_a);
        prop_assert_eq!(forward, backward);
    }
}
